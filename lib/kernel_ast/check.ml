(* Static race/bounds verifier over kernel ASTs.

   Two analyses run over one abstract traversal of the kernel body:

   - every integer expression is abstracted to an interval (from NDRange
     extents, scalar-parameter values and loop ranges) and, when
     possible, a symbolic affine form [base + sum coeff_i * var_i] whose
     variables are [get_global_id] dimensions and loop counters;
   - every load/store records its abstracted index against the accessed
     buffer.

   Race freedom of a buffer's stores is then an injectivity question on
   the affine forms: if the combined form over (gid dims + loop
   counters) is injective on its box — proved by a mixed-radix stride
   argument — no two distinct work-items can write the same cell.
   Bounds safety is interval containment in [0, extent).

   [Unsafe] is deliberately harder to earn than [Unproven]: a candidate
   violation is only reported as [Unsafe] after a concrete partial
   evaluator (loads opaque, guards must evaluate) re-executes the
   kernel for the candidate work-items and reproduces the collision or
   out-of-bounds access.  Everything the analysis cannot decide — in
   particular the indirect [next[bidx[i]]] scatters of the boundary
   kernels — is [Unproven] and covered at runtime by the shadow-memory
   sanitizer. *)

open Cast
open Domain
module SMap = Map.Make (String)

(* -- Public report types ---------------------------------------------- *)

type witness = {
  w_buf : string;
  w_index : int;
  w_gids : (int * int * int) list;
  w_detail : string;
}

type verdict =
  | Safe
  | Unsafe of witness
  | Unproven of string

type buf_report = {
  b_name : string;
  b_kind : [ `Global | `Private | `Local ];
  b_elems : int option;
  b_race : verdict;
  b_bounds : verdict;
}

type report = {
  r_kernel : string;
  r_global : int option array;
  r_bufs : buf_report list;
  r_barrier : verdict;
      (* barrier-divergence freedom: [Safe] when every barrier is under
         work-group-uniform control flow only *)
}

type env = {
  param_value : string -> int option;
  buffer_elems : string -> int option;
  global : int list option;
}

let env ?(param_value = fun _ -> None) ?(buffer_elems = fun _ -> None) ?global () =
  { param_value; buffer_elems; global }

(* -- Analysis state --------------------------------------------------- *)

type access = { ac_store : bool; ac_v : absval; ac_phase : int }
(* [ac_phase] is the number of [Barrier] statements the abstract scan
   passed before this access: local-memory races are analysed per
   barrier-delimited phase. *)

type cenv = {
  e : env;
  gsize : int option array;  (* 3 dims; missing dims are 1 *)
  l3 : int array;  (* work-group size, [|1;1;1|] for flat kernels *)
  is_grouped : bool;
  global_bufs : (string, unit) Hashtbl.t;
  private_arrs : (string, int) Hashtbl.t;
  local_arrs : (string, int) Hashtbl.t;
  accesses : (string, access list ref) Hashtbl.t;
  loop_ranges : (int, itv) Hashtbl.t;
  mutable nloops : int;
  mutable locals : absval SMap.t;
  mutable phase : int;
  mutable divergent_barrier : bool;
      (* a barrier was scanned under work-item-varying control flow *)
}

let record cenv buf ~store v =
  match Hashtbl.find_opt cenv.accesses buf with
  | Some r -> r := { ac_store = store; ac_v = v; ac_phase = cenv.phase } :: !r
  | None ->
      (* a name that is neither a global buffer nor a declared private
         array: malformed kernel; the interpreter reports it *)
      ()

(* Constant evaluation of size expressions through the parameter
   environment (mirrors [Analysis.eval_const]). *)
let rec const_eval (e : env) expr =
  match Cast.simplify expr with
  | Int_lit n -> Some n
  | Var v -> e.param_value v
  | Binop (op, a, b) -> (
      match (const_eval e a, const_eval e b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div when y <> 0 -> Some (x / y)
          | Mod when y <> 0 -> Some (x mod y)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* -- Abstract evaluation ---------------------------------------------- *)

let rec eval cenv (expr : expr) : absval =
  match expr with
  | Int_lit n -> known n
  | Real_lit _ -> top
  | Global_id d ->
      let itv =
        if d < 3 then
          match cenv.gsize.(d) with
          | Some n -> { lo = Some 0; hi = Some (n - 1) }
          | None -> { lo = Some 0; hi = None }
        else top_itv
      in
      { v_itv = itv; v_aff = Some (aff_of_term (Tgid d)); v_tainted = false }
  | Global_size d -> (
      match if d < 3 then cenv.gsize.(d) else None with
      | Some n -> known n
      | None -> { top with v_itv = { lo = Some 1; hi = None } })
  | Group_id d ->
      if not cenv.is_grouped then
        (* flat model: get_group_id(d) = get_global_id(d) *)
        eval cenv (Global_id d)
      else
        let itv =
          if d < 3 then
            match cenv.gsize.(d) with
            | Some n -> { lo = Some 0; hi = Some ((n / cenv.l3.(d)) - 1) }
            | None -> { lo = Some 0; hi = None }
          else top_itv
        in
        { v_itv = itv; v_aff = Some (aff_of_term (Tgrp d)); v_tainted = false }
  | Local_id d ->
      if not cenv.is_grouped then known 0
      else if d < 3 then
        {
          v_itv = { lo = Some 0; hi = Some (cenv.l3.(d) - 1) };
          v_aff = Some (aff_of_term (Tlid d));
          v_tainted = false;
        }
      else known 0
  | Local_size d -> known (if d < 3 then cenv.l3.(d) else 1)
  | Var v -> (
      match SMap.find_opt v cenv.locals with
      | Some av -> av
      | None -> (
          match cenv.e.param_value v with
          | Some n -> known n
          | None ->
              (* an unresolved scalar parameter: value unknown but
                 launch-uniform, so keep it symbolic — it cancels in
                 footprint differences and drops out of cross-work-item
                 injectivity arguments *)
              { v_itv = top_itv; v_aff = Some (aff_of_term (Tparam v)); v_tainted = false }))
  | Load (b, i) ->
      let iv = eval cenv i in
      record cenv b ~store:false iv;
      taint top
  | Unop (op, a) -> (
      let av = eval cenv a in
      match op with
      | Neg ->
          {
            v_itv = itv_neg av.v_itv;
            v_aff = Option.map aff_neg av.v_aff;
            v_tainted = av.v_tainted;
          }
      | Not -> { v_itv = bool_itv; v_aff = None; v_tainted = av.v_tainted }
      | To_real | To_int | Round -> { top with v_tainted = av.v_tainted })
  | Ternary (c, a, b) ->
      let cv = eval cenv c in
      let av = eval cenv a and bv = eval cenv b in
      { (join av bv) with v_tainted = cv.v_tainted || av.v_tainted || bv.v_tainted }
  | Call (_, args) ->
      let tainted = List.exists (fun a -> (eval cenv a).v_tainted) args in
      { top with v_tainted = tainted }
  | Binop (op, a, b) -> (
      let av = eval cenv a and bv = eval cenv b in
      let tainted = av.v_tainted || bv.v_tainted in
      let with_t v = { v with v_tainted = tainted } in
      match op with
      | Add ->
          with_t
            {
              v_itv = itv_add av.v_itv bv.v_itv;
              v_aff = map2_opt aff_add av.v_aff bv.v_aff;
              v_tainted = false;
            }
      | Sub ->
          with_t
            {
              v_itv = itv_sub av.v_itv bv.v_itv;
              v_aff = map2_opt aff_sub av.v_aff bv.v_aff;
              v_tainted = false;
            }
      | Mul ->
          let aff =
            match (av.v_aff, bv.v_aff) with
            | Some { base = k; coeffs = [] }, Some f | Some f, Some { base = k; coeffs = [] }
              ->
                Some (aff_scale k f)
            | _ -> None
          in
          with_t { v_itv = itv_mul av.v_itv bv.v_itv; v_aff = aff; v_tainted = false }
      | Div -> (
          match bv.v_aff with
          | Some { base = c; coeffs = [] } when c > 0 ->
              with_t { top with v_itv = itv_div_pos av.v_itv c }
          | _ -> with_t top)
      | Mod -> (
          match bv.v_aff with
          | Some { base = c; coeffs = [] } when c > 0 -> (
              match av.v_itv.lo with
              | Some l when l >= 0 ->
                  with_t { top with v_itv = { lo = Some 0; hi = Some (c - 1) } }
              | _ -> with_t { top with v_itv = { lo = Some (-(c - 1)); hi = Some (c - 1) } })
          | _ -> with_t top)
      | Shr -> (
          match bv.v_aff with
          | Some { base = k; coeffs = [] } when k >= 0 && k < 62 ->
              with_t { top with v_itv = itv_div_pos av.v_itv (1 lsl k) }
          | _ -> with_t top)
      | BAnd -> (
          let mask v =
            match v.v_aff with Some { base = m; coeffs = [] } when m >= 0 -> Some m | _ -> None
          in
          match (mask av, mask bv) with
          | Some m, _ | _, Some m ->
              with_t { top with v_itv = { lo = Some 0; hi = Some m } }
          | None, None -> with_t top)
      | Eq | Ne | Lt | Le | Gt | Ge | And | Or ->
          with_t { top with v_itv = bool_itv })

(* Variables assigned anywhere in a statement list (loop-body widening). *)
let rec assigned_vars acc = function
  | [] -> acc
  | Assign (v, _) :: tl -> assigned_vars (v :: acc) tl
  | If (_, t, f) :: tl -> assigned_vars (assigned_vars (assigned_vars acc t) f) tl
  | For l :: tl -> assigned_vars (assigned_vars (l.var :: acc) l.body) tl
  | _ :: tl -> assigned_vars acc tl

(* Whether an abstract value can differ between two work-items of the
   same group: its affine form mentions a gid/lid term, or the value is
   unknown / data-dependent.  Uniform values (constants, scalar
   parameters, group ids, loop counters of uniform loops) are the only
   ones under which a barrier is legal. *)
let wi_varying (av : absval) =
  av.v_tainted
  ||
  match av.v_aff with
  | None -> true
  | Some f ->
      List.exists (fun (t, _) -> match t with Tgid _ | Tlid _ -> true | _ -> false) f.coeffs

let rec scan cenv ~varying (s : stmt) =
  match s with
  | Comment _ -> ()
  | Barrier ->
      if cenv.is_grouped && varying then cenv.divergent_barrier <- true;
      cenv.phase <- cenv.phase + 1
  | Decl_local (_, v, n) ->
      Hashtbl.replace cenv.local_arrs v n;
      if not (Hashtbl.mem cenv.accesses v) then Hashtbl.replace cenv.accesses v (ref [])
  | Decl_arr (_, v, n) ->
      Hashtbl.replace cenv.private_arrs v n;
      if not (Hashtbl.mem cenv.accesses v) then Hashtbl.replace cenv.accesses v (ref [])
  | Decl (ty, v, init) ->
      let av =
        match (ty, init) with
        | _, Some e -> eval cenv e
        | Int, None -> known 0
        | Real, None -> top
      in
      cenv.locals <- SMap.add v av cenv.locals
  | Assign (v, e) -> cenv.locals <- SMap.add v (eval cenv e) cenv.locals
  | Store (b, i, e) ->
      let iv = eval cenv i in
      let _ = eval cenv e in
      record cenv b ~store:true iv
  | If (c, t, f) ->
      let cv = eval cenv c in
      let varying = varying || wi_varying cv in
      let saved = cenv.locals in
      List.iter (scan cenv ~varying) t;
      let after_t = cenv.locals in
      cenv.locals <- saved;
      List.iter (scan cenv ~varying) f;
      let after_f = cenv.locals in
      (* join the branch environments *)
      cenv.locals <-
        SMap.merge
          (fun _ a b ->
            match (a, b) with Some x, Some y -> Some (join x y) | _ -> Some top)
          after_t after_f
  | For l ->
      let init_v = eval cenv l.init in
      let bound_v = eval cenv l.bound in
      let step_v = eval cenv l.step in
      let id = cenv.nloops in
      cenv.nloops <- id + 1;
      let range =
        {
          lo = init_v.v_itv.lo;
          hi = Option.map (fun h -> h - 1) bound_v.v_itv.hi;
        }
      in
      Hashtbl.replace cenv.loop_ranges id
        (if init_v.v_tainted || bound_v.v_tainted then top_itv else range);
      (* widen every variable assigned in the body before analysing it,
         so the single abstract pass is sound for all iterations *)
      List.iter
        (fun v -> cenv.locals <- SMap.add v top cenv.locals)
        (assigned_vars [] l.body);
      cenv.locals <-
        SMap.add l.var
          { v_itv = range; v_aff = Some (aff_of_term (Tloop id)); v_tainted = false }
          cenv.locals;
      (* a loop whose trip count can differ per work-item makes every
         barrier in its body divergent *)
      let varying =
        varying || wi_varying init_v || wi_varying bound_v || wi_varying step_v
      in
      List.iter (scan cenv ~varying) l.body

(* -- Concrete partial evaluation (witness confirmation) --------------- *)

(* Re-execute the kernel for one concrete work-item with loads opaque:
   scalar parameters resolve through the environment, private arrays
   hold concrete values, global loads return Unknown.  Every global
   access with a computable index is recorded.  [Bail] aborts witness
   confirmation whenever control flow or a tracked index depends on an
   unknown value — the result is only ever used to *confirm* a
   violation, so bailing out is sound (the verdict stays [Unproven]). *)

exception Bail

type cval =
  | Ki of int
  | Kr of float
  | Kunknown

type caccess = { c_buf : string; c_idx : int; c_store : bool; c_phase : int }

let builtin_c (f : builtin) (args : float list) =
  match (f, args) with
  | Sqrt, [ x ] -> sqrt x
  | Fabs, [ x ] -> Float.abs x
  | Exp, [ x ] -> exp x
  | Log, [ x ] -> log x
  | Sin, [ x ] -> sin x
  | Cos, [ x ] -> cos x
  | Floor, [ x ] -> Float.floor x
  | Fmin, [ x; y ] -> Float.min x y
  | Fmax, [ x; y ] -> Float.max x y
  | _ -> raise Bail

type crun = {
  ce : env;
  cgsize : int array;
  cgid : int array;
  cl3 : int array;  (* work-group size (1s for flat kernels) *)
  scalars : (string, cval) Hashtbl.t;
  arrays : (string, cval array) Hashtbl.t;
  cglobals : (string, unit) Hashtbl.t;
  clocal_arrs : (string, unit) Hashtbl.t;
  mutable recorded : caccess list;
  mutable cbarriers : int;  (* barriers executed: divergence evidence *)
  mutable budget : int;
}

let as_int_c = function Ki i -> Some i | Kr r -> Some (int_of_float r) | Kunknown -> None
let as_real_c = function Kr r -> Some r | Ki i -> Some (float_of_int i) | Kunknown -> None

let rec ceval r (expr : expr) : cval =
  match expr with
  | Int_lit n -> Ki n
  | Real_lit x -> Kr x
  | Global_id d -> Ki r.cgid.(d)
  | Global_size d -> Ki r.cgsize.(d)
  | Group_id d -> Ki (r.cgid.(d) / r.cl3.(d))
  | Local_id d -> Ki (r.cgid.(d) mod r.cl3.(d))
  | Local_size d -> Ki r.cl3.(d)
  | Var v -> (
      match Hashtbl.find_opt r.scalars v with
      | Some c -> c
      | None -> ( match r.ce.param_value v with Some n -> Ki n | None -> Kunknown))
  | Load (b, i) -> (
      let idx = as_int_c (ceval r i) in
      match Hashtbl.find_opt r.arrays b with
      | Some a -> (
          match idx with
          | Some k when k >= 0 && k < Array.length a -> a.(k)
          | Some k ->
              r.recorded <-
                { c_buf = b; c_idx = k; c_store = false; c_phase = r.cbarriers } :: r.recorded;
              Kunknown
          | None -> raise Bail)
      | None ->
          (if Hashtbl.mem r.cglobals b || Hashtbl.mem r.clocal_arrs b then
             match idx with
             | Some k ->
                 r.recorded <-
                   { c_buf = b; c_idx = k; c_store = false; c_phase = r.cbarriers }
                   :: r.recorded
             | None -> raise Bail);
          Kunknown)
  | Unop (op, a) -> (
      let v = ceval r a in
      match (op, v) with
      | _, Kunknown -> Kunknown
      | Neg, Ki i -> Ki (-i)
      | Neg, Kr x -> Kr (-.x)
      | Not, _ -> ( match as_int_c v with Some i -> Ki (if i = 0 then 1 else 0) | None -> Kunknown)
      | To_real, _ -> ( match as_real_c v with Some x -> Kr x | None -> Kunknown)
      | To_int, _ -> ( match as_int_c v with Some i -> Ki i | None -> Kunknown)
      | Round, _ -> (
          match as_real_c v with
          | Some x -> Kr (Int32.float_of_bits (Int32.bits_of_float x))
          | None -> Kunknown))
  | Ternary (c, a, b) -> (
      match as_int_c (ceval r c) with
      | Some 0 -> ceval r b
      | Some _ -> ceval r a
      | None -> raise Bail)
  | Call (f, args) -> (
      let vs = List.map (fun a -> as_real_c (ceval r a)) args in
      if List.exists Option.is_none vs then Kunknown
      else Kr (builtin_c f (List.map Option.get vs)))
  | Binop (op, a, b) -> cbinop op (ceval r a) (ceval r b)

and cbinop op va vb =
  let arith fi fr =
    match (va, vb) with
    | Ki x, Ki y -> Ki (fi x y)
    | Kunknown, _ | _, Kunknown -> Kunknown
    | _ -> (
        match (as_real_c va, as_real_c vb) with
        | Some x, Some y -> Kr (fr x y)
        | _ -> Kunknown)
  in
  let compare cmp =
    match (as_real_c va, as_real_c vb) with
    | Some x, Some y -> Ki (if cmp (Stdlib.compare x y) 0 then 1 else 0)
    | _ -> Kunknown
  in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> ( match vb with Ki 0 -> Kunknown | _ -> arith ( / ) ( /. ))
  | Mod -> ( match vb with Ki 0 -> Kunknown | _ -> arith (fun x y -> x mod y) Float.rem)
  | Eq -> compare ( = )
  | Ne -> compare ( <> )
  | Lt -> compare ( < )
  | Le -> compare ( <= )
  | Gt -> compare ( > )
  | Ge -> compare ( >= )
  | And -> (
      match (as_int_c va, as_int_c vb) with
      | Some 0, _ | _, Some 0 -> Ki 0
      | Some _, Some _ -> Ki 1
      | _ -> Kunknown)
  | Or -> (
      match (as_int_c va, as_int_c vb) with
      | Some x, Some y when x = 0 && y = 0 -> Ki 0
      | Some x, _ when x <> 0 -> Ki 1
      | _, Some y when y <> 0 -> Ki 1
      | _ -> Kunknown)
  | Shr -> ( match (va, vb) with Ki x, Ki y -> Ki (x asr y) | _ -> Kunknown)
  | BAnd -> ( match (va, vb) with Ki x, Ki y -> Ki (x land y) | _ -> Kunknown)

let rec cexec r (s : stmt) =
  match s with
  | Comment _ -> ()
  | Barrier -> r.cbarriers <- r.cbarriers + 1
  | Decl_local (_, v, _) ->
      (* local memory is shared across work-items, so a per-work-item
         concrete array would be unsound: keep it opaque and record
         every access with its barrier phase instead *)
      Hashtbl.replace r.clocal_arrs v ()
  | Decl (ty, v, init) ->
      let value =
        match init with
        | Some e -> ceval r e
        | None -> ( match ty with Int -> Ki 0 | Real -> Kr 0.)
      in
      Hashtbl.replace r.scalars v value
  | Decl_arr (ty, v, n) ->
      Hashtbl.replace r.arrays v
        (Array.make n (match ty with Int -> Ki 0 | Real -> Kr 0.))
  | Assign (v, e) -> Hashtbl.replace r.scalars v (ceval r e)
  | Store (b, i, e) -> (
      let idx = as_int_c (ceval r i) in
      let v = ceval r e in
      match Hashtbl.find_opt r.arrays b with
      | Some a -> (
          match idx with
          | Some k when k >= 0 && k < Array.length a -> a.(k) <- v
          | Some k ->
              r.recorded <-
                { c_buf = b; c_idx = k; c_store = true; c_phase = r.cbarriers } :: r.recorded
          | None -> raise Bail)
      | None -> (
          if Hashtbl.mem r.cglobals b || Hashtbl.mem r.clocal_arrs b then
            match idx with
            | Some k ->
                r.recorded <-
                  { c_buf = b; c_idx = k; c_store = true; c_phase = r.cbarriers } :: r.recorded
            | None -> raise Bail))
  | If (c, t, f) -> (
      match as_int_c (ceval r c) with
      | Some 0 -> List.iter (cexec r) f
      | Some _ -> List.iter (cexec r) t
      | None -> raise Bail)
  | For l ->
      let get e = match as_int_c (ceval r e) with Some n -> n | None -> raise Bail in
      let i = ref (get l.init) in
      Hashtbl.replace r.scalars l.var (Ki !i);
      while !i < get l.bound do
        r.budget <- r.budget - 1;
        if r.budget <= 0 then raise Bail;
        Hashtbl.replace r.scalars l.var (Ki !i);
        List.iter (cexec r) l.body;
        i := !i + get l.step
      done

(* Run [k]'s body for one work-item; [None] when the execution depends
   on unknown data.  Returns the recorded accesses and the number of
   barriers the work-item executed (divergence evidence). *)
let crun_workitem e (k : kernel) ~gsize ~gid : (caccess list * int) option =
  let r =
    {
      ce = e;
      cgsize = gsize;
      cgid = gid;
      cl3 = local3 k;
      scalars = Hashtbl.create 16;
      arrays = Hashtbl.create 4;
      cglobals = Hashtbl.create 8;
      clocal_arrs = Hashtbl.create 4;
      recorded = [];
      cbarriers = 0;
      budget = 4096;
    }
  in
  List.iter (fun p -> if p.p_kind = Global_buf then Hashtbl.replace r.cglobals p.p_name ()) k.params;
  match List.iter (cexec r) k.body with
  | () -> Some (List.rev r.recorded, r.cbarriers)
  | exception Bail -> None

(* -- Race analysis ---------------------------------------------------- *)

type dim = { d_coeff : int; d_extent : int; d_gid : int option }
(* one injectivity dimension: |coefficient|, index range (max - min),
   and the gid dimension it came from (None for loop counters) *)

(* For a local buffer two stores only conflict within the same
   barrier-delimited phase (the barrier orders the phases), so the
   collision must also match on phase. *)
let confirm_race ?(local = false) e k ~gsize buf (g1 : int array) (g2 : int array) :
    witness option =
  match (crun_workitem e k ~gsize ~gid:g1, crun_workitem e k ~gsize ~gid:g2) with
  | Some (a1, _), Some (a2, _) ->
      let stores l =
        List.filter_map
          (fun a -> if a.c_store && a.c_buf = buf then Some (a.c_idx, a.c_phase) else None)
          l
      in
      let s1 = stores a1 and s2 = stores a2 in
      let common =
        List.filter
          (fun (i, ph) ->
            List.exists (fun (j, ph') -> j = i && ((not local) || ph = ph')) s2)
          s1
      in
      (match common with
      | (idx, _) :: _ ->
          let t a = (a.(0), a.(1), a.(2)) in
          Some
            {
              w_buf = buf;
              w_index = idx;
              w_gids = [ t g1; t g2 ];
              w_detail =
                Printf.sprintf "work-items %s and %s both store %s[%d]%s"
                  (Printf.sprintf "(%d,%d,%d)" g1.(0) g1.(1) g1.(2))
                  (Printf.sprintf "(%d,%d,%d)" g2.(0) g2.(1) g2.(2))
                  buf idx
                  (if local then " in the same barrier phase" else "");
            }
      | [] -> None)
  | _ -> None

(* Candidate work-item pairs worth testing for a collision on [form]:
   pairs differing only in a gid dimension the form ignores, plus a
   greedy attempt at realising one coefficient as a combination of
   lower-significance gid coefficients. *)
let candidate_pairs ~gsize ?(l3 = [| 1; 1; 1 |]) (form : aff) =
  let unit d = Array.init 3 (fun i -> if i = d then 1 else 0) in
  let scaled d k = Array.init 3 (fun i -> if i = d then k else 0) in
  let zeros = Array.make 3 0 in
  let coeff d = Option.value ~default:0 (List.assoc_opt (Tgid d) form.coeffs) in
  let active d = gsize.(d) > 1 in
  let ignored =
    List.filter_map
      (fun d -> if active d && coeff d = 0 then Some (zeros, unit d) else None)
      [ 0; 1; 2 ]
  in
  (* grouped kernels: same local id, adjacent group — catches stores
     addressed by local id only, which collide across groups *)
  let cross_group =
    List.filter_map
      (fun d ->
        if active d && l3.(d) > 1 && gsize.(d) > l3.(d) then
          Some (zeros, scaled d l3.(d))
        else None)
      [ 0; 1; 2 ]
  in
  let greedy =
    (* realise coeff(k) = sum over lower dims: gid pair (unit k, delta) *)
    List.filter_map
      (fun kd ->
        let ck = coeff kd in
        if not (active kd) || ck = 0 then None
        else
          let lower =
            List.filter (fun d -> d <> kd && active d && coeff d <> 0) [ 0; 1; 2 ]
            |> List.sort (fun a b -> compare (abs (coeff b)) (abs (coeff a)))
          in
          let delta = Array.make 3 0 in
          let target = ref (abs ck) in
          List.iter
            (fun d ->
              let c = abs (coeff d) in
              let steps = min (!target / c) (gsize.(d) - 1) in
              delta.(d) <- steps;
              target := !target - (steps * c))
            lower;
          if !target = 0 && Array.exists (fun x -> x > 0) delta then Some (unit kd, delta)
          else None)
      [ 0; 1; 2 ]
  in
  ignored @ cross_group @ greedy

let race_verdict cenv e (k : kernel) buf (stores : absval list) : verdict =
  if stores = [] then Safe
  else if List.exists (fun s -> s.v_tainted) stores then
    Unproven "store index depends on loaded data (indirect scatter)"
  else if List.exists (fun s -> s.v_aff = None) stores then
    Unproven "store index is not affine in work-item ids"
  else
    let forms = List.sort_uniq compare (List.map (fun s -> Option.get s.v_aff) stores) in
    (* Several store forms sharing the same gid/loop coefficients and
       uniformly spaced bases (the shape loop unrolling produces from a
       single [b*MB+i] store) merge into one form plus a pseudo loop
       dimension ranging over the bases: injectivity over the combined
       box is stronger than race-freedom, which only needs distinct
       work-items to stay disjoint. *)
    let merged =
      match forms with
      | [] | [ _ ] -> None
      | f0 :: rest when List.for_all (fun f -> f.coeffs = f0.coeffs) rest ->
          let bases = List.map (fun f -> f.base) forms |> List.sort compare in
          let spacings =
            List.map2 (fun a b -> b - a)
              (List.filteri (fun i _ -> i < List.length bases - 1) bases)
              (List.tl bases)
          in
          (match spacings with
          | s :: _ when s > 0 && List.for_all (( = ) s) spacings ->
              Some (f0, [ { d_coeff = s; d_extent = List.length bases - 1; d_gid = None } ])
          | _ -> None)
      | _ -> None
    in
    let single =
      match (forms, merged) with
      | [ form ], _ -> Some (form, [])
      | _, Some (form, extra) -> Some (form, extra)
      | _ -> None
    in
    match single with
    | None -> Unproven "multiple distinct store index shapes"
    | Some (form, extra_dims) -> (
        match cenv.gsize with
        | gs when Array.exists (fun d -> d = None) gs ->
            ignore gs;
            Unproven "NDRange extent not statically known"
        | _ ->
            let gsize = Array.map (fun d -> Option.get d) cenv.gsize in
            let cf t = Option.value ~default:0 (List.assoc_opt t form.coeffs) in
            let coeff d = cf (Tgid d) in
            (* every dimension of the combined (gid/group/lid + loop)
               box.  Injectivity over the product box is sound even
               though gid = grp*L + lid correlates the components: the
               box over-approximates the set of executions, so proving
               injectivity there is only harder. *)
            let dims_exn () =
              let l3 = cenv.l3 in
              let gid_dims =
                List.concat_map
                  (fun d ->
                    if gsize.(d) <= 1 then []
                    else
                      let cg = coeff d and cgr = cf (Tgrp d) and cl = cf (Tlid d) in
                      let groups = gsize.(d) / l3.(d) in
                      let covered =
                        cg <> 0 || ((cgr <> 0 || groups <= 1) && (cl <> 0 || l3.(d) <= 1))
                      in
                      if not covered then
                        (* an active NDRange dimension the index ignores:
                           keep a zero-coefficient marker so the radix
                           argument fails and the candidate path runs *)
                        [ { d_coeff = 0; d_extent = gsize.(d) - 1; d_gid = Some d } ]
                      else
                        List.concat
                          [
                            (if cg <> 0 then
                               [ { d_coeff = abs cg; d_extent = gsize.(d) - 1; d_gid = Some d } ]
                             else []);
                            (if cgr <> 0 then
                               [ { d_coeff = abs cgr; d_extent = groups - 1; d_gid = None } ]
                             else []);
                            (if cl <> 0 then
                               [ { d_coeff = abs cl; d_extent = l3.(d) - 1; d_gid = None } ]
                             else []);
                          ])
                  [ 0; 1; 2 ]
              in
              let loop_dims =
                List.filter_map
                  (fun (t, c) ->
                    match t with
                    | Tgid _ | Tgrp _ | Tlid _ -> None
                    | Tparam _ ->
                        (* launch-uniform: the same value for every
                           work-item, irrelevant to injectivity *)
                        None
                    | Tloop id -> (
                        match Hashtbl.find_opt cenv.loop_ranges id with
                        | Some { lo = Some l; hi = Some h } ->
                            Some { d_coeff = abs c; d_extent = max 0 (h - l); d_gid = None }
                        | _ -> raise Exit))
                  form.coeffs
              in
              gid_dims @ loop_dims @ extra_dims
            in
            (match dims_exn () with
            | exception Exit -> Unproven "loop range not statically known"
            | dims ->
                let zero_gid = List.find_opt (fun d -> d.d_gid <> None && d.d_coeff = 0) dims in
                let radix_ok =
                  List.sort (fun a b -> compare a.d_coeff b.d_coeff) dims
                  |> List.fold_left
                       (fun acc d ->
                         match acc with
                         | None -> None
                         | Some reach ->
                             if d.d_coeff <= reach then None
                             else Some (reach + (d.d_coeff * d.d_extent)))
                       (Some 0)
                  |> Option.is_some
                in
                if zero_gid = None && radix_ok then Safe
                else
                  (* candidate collision: only claim Unsafe when a pair of
                     work-items is concretely confirmed to collide *)
                  let pairs = candidate_pairs ~gsize ~l3:cenv.l3 form in
                  let rec try_pairs = function
                    | [] ->
                        Unproven
                          (if zero_gid <> None then
                             "store index ignores an active NDRange dimension \
                              (collision not concretely confirmed)"
                           else "store index strides may collide across work-items")
                    | (g1, g2) :: rest -> (
                        match confirm_race e k ~gsize buf g1 g2 with
                        | Some w -> Unsafe w
                        | None -> try_pairs rest)
                  in
                  try_pairs pairs))

(* -- Local-memory race analysis --------------------------------------- *)

(* Race freedom of a work-group-local array: within one barrier-delimited
   phase, no two work-items of the same group may store to the same slot.
   The injectivity argument runs over the local-id box only (group ids
   are uniform within a group and drop out; a [Tgid] coefficient varies
   across exactly the [l3] window within a group).  The static phase is
   an approximation — barriers inside loops delimit phases dynamically —
   so everything undecided stays [Unproven] for the runtime sanitizer. *)
let local_race_verdict cenv e (k : kernel) buf (stores : (absval * int) list) : verdict =
  if not cenv.is_grouped then Safe (* flat model: Decl_local is private *)
  else if stores = [] then Safe
  else
    let l3 = cenv.l3 in
    let confirm () =
      match cenv.gsize with
      | gs when Array.exists (fun d -> d = None) gs -> None
      | _ ->
          let gsize = Array.map (fun d -> Option.get d) cenv.gsize in
          let pairs =
            List.filter_map
              (fun d ->
                if l3.(d) > 1 && gsize.(d) > 1 then
                  Some
                    ( Array.make 3 0,
                      Array.init 3 (fun i -> if i = d then 1 else 0) )
                else None)
              [ 0; 1; 2 ]
          in
          List.find_map
            (fun (g1, g2) -> confirm_race ~local:true e k ~gsize buf g1 g2)
            pairs
    in
    if List.exists (fun (s, _) -> s.v_tainted) stores then
      match confirm () with
      | Some w -> Unsafe w
      | None -> Unproven "local store index depends on loaded data"
    else if List.exists (fun (s, _) -> s.v_aff = None) stores then
      match confirm () with
      | Some w -> Unsafe w
      | None -> Unproven "local store index is not affine in work-item ids"
    else
      let phases =
        List.sort_uniq compare (List.map snd stores)
      in
      let phase_verdict ph =
        let forms =
          List.filter_map
            (fun (s, p) -> if p = ph then Some (Option.get s.v_aff) else None)
            stores
          |> List.sort_uniq compare
        in
        match forms with
        | [] | [ _ ] -> (
            match forms with
            | [ form ] ->
                let cf t = Option.value ~default:0 (List.assoc_opt t form.coeffs) in
                let dims_exn () =
                  let lid_dims =
                    List.concat_map
                      (fun d ->
                        if l3.(d) <= 1 then []
                        else
                          let cl = cf (Tlid d) and cg = cf (Tgid d) in
                          if cl = 0 && cg = 0 then
                            (* every work-item along this local dimension
                               hits the same slot *)
                            [ { d_coeff = 0; d_extent = l3.(d) - 1; d_gid = Some d } ]
                          else
                            List.concat
                              [
                                (if cl <> 0 then
                                   [ { d_coeff = abs cl; d_extent = l3.(d) - 1; d_gid = None } ]
                                 else []);
                                (if cg <> 0 then
                                   [ { d_coeff = abs cg; d_extent = l3.(d) - 1; d_gid = None } ]
                                 else []);
                              ])
                      [ 0; 1; 2 ]
                  in
                  let loop_dims =
                    List.filter_map
                      (fun (t, c) ->
                        match t with
                        | Tgid _ | Tgrp _ | Tlid _ -> None
                    | Tparam _ ->
                        (* launch-uniform: the same value for every
                           work-item, irrelevant to injectivity *)
                        None
                        | Tloop id -> (
                            match Hashtbl.find_opt cenv.loop_ranges id with
                            | Some { lo = Some l; hi = Some h } ->
                                Some { d_coeff = abs c; d_extent = max 0 (h - l); d_gid = None }
                            | _ -> raise Exit))
                      form.coeffs
                  in
                  lid_dims @ loop_dims
                in
                (match dims_exn () with
                | exception Exit -> Unproven "loop range not statically known"
                | dims ->
                    let uncovered = List.exists (fun d -> d.d_coeff = 0) dims in
                    let radix_ok =
                      List.sort (fun a b -> compare a.d_coeff b.d_coeff) dims
                      |> List.fold_left
                           (fun acc d ->
                             match acc with
                             | None -> None
                             | Some reach ->
                                 if d.d_coeff <= reach then None
                                 else Some (reach + (d.d_coeff * d.d_extent)))
                           (Some 0)
                      |> Option.is_some
                    in
                    if (not uncovered) && radix_ok then Safe
                    else
                      match confirm () with
                      | Some w -> Unsafe w
                      | None ->
                          Unproven
                            "local store strides may collide across work-items of a group")
            | _ -> Safe)
        | _ -> (
            (* several distinct store shapes in one phase: the guarded
               cooperative-load idiom; only claim Unsafe on concrete
               confirmation *)
            match confirm () with
            | Some w -> Unsafe w
            | None -> Unproven "multiple local store index shapes in one barrier phase")
      in
      let rec worst = function
        | [] -> Safe
        | ph :: rest -> (
            match phase_verdict ph with
            | Safe -> worst rest
            | Unsafe w -> Unsafe w
            | Unproven r -> (
                match worst rest with Unsafe w -> Unsafe w | _ -> Unproven r))
      in
      worst phases

(* -- Barrier-divergence analysis --------------------------------------- *)

(* A barrier under work-item-varying control flow is only reported
   [Unsafe] when two concrete work-items of the same group are shown to
   execute different barrier counts. *)
let barrier_verdict cenv e (k : kernel) : verdict =
  if not (cenv.is_grouped && Cast.contains_barrier k.body) then Safe
  else if not cenv.divergent_barrier then Safe
  else
    let unconfirmed =
      Unproven "barrier under work-item-varying control flow (divergence not confirmed)"
    in
    match cenv.gsize with
    | gs when Array.exists (fun d -> d = None) gs -> unconfirmed
    | _ ->
        let gsize = Array.map (fun d -> Option.get d) cenv.gsize in
        let l3 = cenv.l3 in
        let zeros = Array.make 3 0 in
        let candidates =
          List.concat_map
            (fun d ->
              if l3.(d) > 1 && gsize.(d) > 1 then
                [
                  Array.init 3 (fun i -> if i = d then 1 else 0);
                  Array.init 3 (fun i -> if i = d then min (l3.(d) - 1) (gsize.(d) - 1) else 0);
                ]
              else [])
            [ 0; 1; 2 ]
        in
        let base = crun_workitem e k ~gsize ~gid:zeros in
        let diverges gid =
          match (base, crun_workitem e k ~gsize ~gid) with
          | Some (_, b0), Some (_, b1) when b0 <> b1 -> Some (b0, b1)
          | _ -> None
        in
        let rec go = function
          | [] -> unconfirmed
          | gid :: rest -> (
              match diverges gid with
              | Some (b0, b1) ->
                  Unsafe
                    {
                      w_buf = "(barrier)";
                      w_index = b1 - b0;
                      w_gids = [ (0, 0, 0); (gid.(0), gid.(1), gid.(2)) ];
                      w_detail =
                        Printf.sprintf
                          "work-items (0,0,0) and (%d,%d,%d) of the same group execute %d \
                           and %d barriers"
                          gid.(0) gid.(1) gid.(2) b0 b1;
                    }
              | None -> go rest)
        in
        go candidates

(* -- Bounds analysis -------------------------------------------------- *)

(* The gid that drives an affine index to its maximum (resp. minimum). *)
let extremal_gid ~gsize (form : aff) ~maximise =
  Array.init 3 (fun d ->
      match List.assoc_opt (Tgid d) form.coeffs with
      | Some c when (c > 0) = maximise && gsize.(d) > 0 -> gsize.(d) - 1
      | _ -> 0)

let confirm_oob e k ~gsize buf ~elems (gid : int array) : witness option =
  match crun_workitem e k ~gsize ~gid with
  | None -> None
  | Some (accs, _) -> (
      match
        List.find_opt (fun a -> a.c_buf = buf && (a.c_idx < 0 || a.c_idx >= elems)) accs
      with
      | Some a ->
          Some
            {
              w_buf = buf;
              w_index = a.c_idx;
              w_gids = [ (gid.(0), gid.(1), gid.(2)) ];
              w_detail =
                Printf.sprintf "work-item (%d,%d,%d) accesses %s[%d], extent %d" gid.(0)
                  gid.(1) gid.(2) buf a.c_idx elems;
            }
      | None -> None)

let bounds_verdict cenv e (k : kernel) buf ~elems (accs : access list) : verdict =
  match elems with
  | None -> if accs = [] then Safe else Unproven "buffer extent not known"
  | Some n ->
      let bad =
        List.filter (fun a -> not (itv_within a.ac_v.v_itv ~lo:0 ~hi:(n - 1))) accs
      in
      if bad = [] then Safe
      else if Array.exists (fun d -> d = None) cenv.gsize then
        Unproven "NDRange extent not statically known"
      else
        let gsize = Array.map (fun d -> Option.get d) cenv.gsize in
        (* try to concretely realise a violation at the work-items that
           extremise some affine out-of-range index *)
        let candidates =
          List.concat_map
            (fun a ->
              match a.ac_v.v_aff with
              | Some f ->
                  [ extremal_gid ~gsize f ~maximise:true; extremal_gid ~gsize f ~maximise:false ]
              | None -> [])
            bad
          @ [ Array.make 3 0 ]
        in
        let rec try_gids = function
          | [] ->
              let a = List.hd bad in
              Unproven
                (if a.ac_v.v_tainted then
                   "index depends on loaded data; extent not statically checkable"
                 else
                   Fmt.str "index interval %a not contained in [0, %d)" pp_itv a.ac_v.v_itv n)
          | gid :: rest -> (
              match confirm_oob e k ~gsize buf ~elems:n gid with
              | Some w -> Unsafe w
              | None -> try_gids rest)
        in
        try_gids candidates

(* -- Driver ----------------------------------------------------------- *)

let resolve_gsize (e : env) (k : kernel) =
  let gs = Array.make 3 (Some 1) in
  (match e.global with
  | Some l -> List.iteri (fun d n -> if d < 3 then gs.(d) <- Some n) l
  | None ->
      List.iteri (fun d expr -> if d < 3 then gs.(d) <- const_eval e expr) k.global_size);
  gs

let analyse (e : env) (k : kernel) =
  let cenv =
    {
      e;
      gsize = resolve_gsize e k;
      l3 = local3 k;
      is_grouped = grouped k;
      global_bufs = Hashtbl.create 8;
      private_arrs = Hashtbl.create 4;
      local_arrs = Hashtbl.create 4;
      accesses = Hashtbl.create 16;
      loop_ranges = Hashtbl.create 4;
      nloops = 0;
      locals = SMap.empty;
      phase = 0;
      divergent_barrier = false;
    }
  in
  List.iter
    (fun p ->
      if p.p_kind = Global_buf then begin
        Hashtbl.replace cenv.global_bufs p.p_name ();
        Hashtbl.replace cenv.accesses p.p_name (ref [])
      end)
    k.params;
  List.iter (scan cenv ~varying:false) k.body;
  cenv

let check (e : env) (k : kernel) : report =
  let cenv = analyse e k in
  let buf_names =
    Hashtbl.fold (fun n _ acc -> n :: acc) cenv.accesses [] |> List.sort compare
  in
  let bufs =
    List.map
      (fun name ->
        let accs = List.rev !(Hashtbl.find cenv.accesses name) in
        let is_global = Hashtbl.mem cenv.global_bufs name in
        let is_local = Hashtbl.mem cenv.local_arrs name in
        let elems =
          if is_global then e.buffer_elems name
          else if is_local then Hashtbl.find_opt cenv.local_arrs name
          else Hashtbl.find_opt cenv.private_arrs name
        in
        let stores = List.filter_map (fun a -> if a.ac_store then Some a.ac_v else None) accs in
        let race =
          if is_global then race_verdict cenv e k name stores
          else if is_local then
            local_race_verdict cenv e k name
              (List.filter_map
                 (fun a -> if a.ac_store then Some (a.ac_v, a.ac_phase) else None)
                 accs)
          else Safe (* private arrays are per-work-item: no cross-item races *)
        in
        {
          b_name = name;
          b_kind = (if is_global then `Global else if is_local then `Local else `Private);
          b_elems = elems;
          b_race = race;
          b_bounds = bounds_verdict cenv e k name ~elems accs;
        })
      buf_names
  in
  {
    r_kernel = k.name;
    r_global = cenv.gsize;
    r_bufs = bufs;
    r_barrier = barrier_verdict cenv e k;
  }

let ok r =
  (match r.r_barrier with Unsafe _ -> false | _ -> true)
  && List.for_all
       (fun b ->
         (match b.b_race with Unsafe _ -> false | _ -> true)
         && match b.b_bounds with Unsafe _ -> false | _ -> true)
       r.r_bufs

let fully_proven r =
  r.r_barrier = Safe && List.for_all (fun b -> b.b_race = Safe && b.b_bounds = Safe) r.r_bufs

let unsafe_bufs r =
  List.filter
    (fun b ->
      (match b.b_race with Unsafe _ -> true | _ -> false)
      || match b.b_bounds with Unsafe _ -> true | _ -> false)
    r.r_bufs

let required_extents (e : env) (k : kernel) : (string * int) list =
  let cenv = analyse e k in
  Hashtbl.fold
    (fun name accs acc ->
      if not (Hashtbl.mem cenv.global_bufs name) then acc
      else
        let his = List.map (fun a -> a.ac_v.v_itv.hi) !accs in
        if his = [] || List.exists Option.is_none his then acc
        else
          let hi = List.fold_left (fun m h -> max m (Option.get h)) 0 his in
          (name, hi + 1) :: acc)
    cenv.accesses []
  |> List.sort compare

(* -- Printing --------------------------------------------------------- *)

let pp_verdict ppf = function
  | Safe -> Fmt.string ppf "safe"
  | Unproven reason -> Fmt.pf ppf "unproven (%s)" reason
  | Unsafe w -> Fmt.pf ppf "UNSAFE: %s" w.w_detail

let pp_report ppf (r : report) =
  let gs =
    String.concat "x"
      (Array.to_list
         (Array.map (function Some n -> string_of_int n | None -> "?") r.r_global))
  in
  Fmt.pf ppf "kernel %s (NDRange %s)@." r.r_kernel gs;
  (match r.r_barrier with
  | Safe -> ()
  | v -> Fmt.pf ppf "  barrier divergence: %a@." pp_verdict v);
  List.iter
    (fun b ->
      Fmt.pf ppf "  %-10s %-7s %-12s race: %a@.  %-10s %-7s %-12s bounds: %a@." b.b_name
        (match b.b_kind with `Global -> "global" | `Private -> "private" | `Local -> "local")
        (match b.b_elems with Some n -> Printf.sprintf "[%d]" n | None -> "[?]")
        pp_verdict b.b_race "" "" "" pp_verdict b.b_bounds)
    r.r_bufs
