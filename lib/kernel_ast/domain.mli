(** Interval / affine abstract domain shared by the static analyses.

    {!module:Check} (race/bounds verification) and {!module:Footprint}
    (stencil-footprint inference) both abstract integer expressions to

    - an {b interval} [\[lo, hi\]] with optional (unknown) endpoints, and
    - when possible a symbolic {b affine form}
      [base + sum coeff_i * term_i] over NDRange ids, loop counters and
      launch-uniform scalar parameters.

    The forms are exact (no rounding): every operation either returns
    the precise abstract result or gives up ([None] / {!top_itv}). *)

(** {2 Intervals} *)

type itv = { lo : int option; hi : int option }

val top_itv : itv
val point : int -> itv
val bool_itv : itv
val map2_opt : ('a -> 'b -> 'c) -> 'a option -> 'b option -> 'c option
val itv_add : itv -> itv -> itv
val itv_neg : itv -> itv
val itv_sub : itv -> itv -> itv
val itv_mul : itv -> itv -> itv

val itv_div_pos : itv -> int -> itv
(** Truncating division by a positive constant; precise only for
    non-negative operands. *)

val itv_join : itv -> itv -> itv
val itv_within : itv -> lo:int -> hi:int -> bool
val pp_itv : Format.formatter -> itv -> unit

(** {2 Affine forms} *)

type term =
  | Tgid of int  (** [get_global_id d] *)
  | Tlid of int  (** [get_local_id d], grouped kernels only *)
  | Tgrp of int  (** [get_group_id d], grouped kernels only *)
  | Tloop of int  (** unique id per syntactic loop *)
  | Tparam of string
      (** scalar kernel parameter with no statically known value: unknown
          but {e launch-uniform} — the same for every work-item, so it
          drops out of cross-work-item injectivity arguments and cancels
          in footprint offset differences *)

type aff = { base : int; coeffs : (term * int) list }
(** [coeffs] sorted by term, all coefficients non-zero. *)

val aff_const : int -> aff
val aff_of_term : term -> aff
val aff_add : aff -> aff -> aff
val aff_scale : int -> aff -> aff
val aff_neg : aff -> aff
val aff_sub : aff -> aff -> aff

val aff_coeff : term -> aff -> int
(** Coefficient of a term, 0 when absent. *)

val aff_shift : term -> int -> aff -> aff
(** [aff_shift t k f] substitutes [t := t + k] in [f] (the form's base
    absorbs [k * coeff t]).  Used to age loop-carried values by one
    iteration in {!module:Footprint}. *)

val is_const : aff -> bool
val pp_term : Format.formatter -> term -> unit
val pp_aff : Format.formatter -> aff -> unit

(** {2 Abstract values} *)

type absval = {
  v_itv : itv;
  v_aff : aff option;
  v_tainted : bool;  (** depends on data loaded from memory *)
}

val top : absval
val taint : absval -> absval
val known : int -> absval
val join : absval -> absval -> absval
