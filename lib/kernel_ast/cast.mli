(** C-like abstract syntax for GPU kernels.

    This is the target language of the Lift code generator and the
    program representation executed by the virtual GPU ({!module:Vgpu}).
    It covers the subset of OpenCL C needed by FDTD kernels: scalar
    int/real arithmetic, global-memory buffers, private (register)
    arrays, sequential loops, conditionals and NDRange work-item
    identifiers. *)

(** Scalar types.  [Real] stands for [float] or [double] depending on
    the kernel's {!type:precision}. *)
type ty =
  | Int
  | Real

(** Floating-point width of a kernel; a kernel is generated once per
    precision. *)
type precision =
  | Single
  | Double

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Shr   (** arithmetic shift right; produced by strength reduction *)
  | BAnd  (** bitwise and; produced by strength reduction *)

type unop =
  | Neg
  | Not
  | To_real  (** int -> real conversion *)
  | To_int   (** real -> int truncation *)
  | Round
      (** round to the nearest representable float32, kept as a real:
          the rounding a store to a [Single]-precision buffer performs,
          available on register values — temporally-fused kernels use it
          to reproduce the store-rounding of the per-step pipeline on
          generations that never leave registers.  Identity under
          [Double]-precision semantics only if the value already fits;
          emit it unconditionally only in [Single]-precision kernels. *)

(** Math builtins, kept abstract so the interpreter, the JIT and the
    printer agree on the supported set. *)
type builtin =
  | Sqrt
  | Fabs
  | Exp
  | Log
  | Sin
  | Cos
  | Floor
  | Fmin
  | Fmax

type expr =
  | Int_lit of int
  | Real_lit of float
  | Var of string
  | Load of string * expr  (** [name[idx]]: global buffer or private array *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Ternary of expr * expr * expr  (** [cond ? a : b] *)
  | Call of builtin * expr list
  | Global_id of int    (** [get_global_id(d)] *)
  | Global_size of int  (** [get_global_size(d)] *)
  | Group_id of int     (** [get_group_id(d)] *)
  | Local_id of int     (** [get_local_id(d)] *)
  | Local_size of int   (** [get_local_size(d)] *)

type stmt =
  | Decl of ty * string * expr option
  | Decl_arr of ty * string * int  (** private array of static length *)
  | Decl_local of ty * string * int
      (** work-group local array of static length; must appear at the
          top level of the body before any use, and is zeroed once per
          work-group *)
  | Assign of string * expr
  | Store of string * expr * expr  (** [name[idx] = value] *)
  | If of expr * stmt list * stmt list
  | For of for_loop
  | Barrier
      (** work-group barrier (local memory fence): every work-item of a
          group must reach the same dynamic barrier instance *)
  | Comment of string

and for_loop = {
  var : string;
  init : expr;
  bound : expr;  (** loop while [var < bound] *)
  step : expr;
  body : stmt list;
}

type param_kind =
  | Global_buf    (** [__global] pointer *)
  | Scalar_param

type param = {
  p_name : string;
  p_ty : ty;
  p_kind : param_kind;
}

type kernel = {
  name : string;
  params : param list;
  body : stmt list;
  precision : precision;
  global_size : expr list;
      (** NDRange extent per dimension, as expressions over scalar
          parameters; may have fewer than 3 entries. *)
  local_size : int list;
      (** Work-group size per dimension, as static ints.  [[]] selects
          the flat execution model (no groups, no local memory, barriers
          are no-ops, [Group_id d = Global_id d] and [Local_id d = 0]);
          when non-empty, every launch dimension must be divisible by
          the corresponding entry (missing trailing dimensions default
          to 1). *)
}

(** {1 Construction helpers} *)

val int_lit : int -> expr
val real_lit : float -> expr
val var : string -> expr
val load : string -> expr -> expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr

(** [for_ v ~from ~below ?step body] builds a counted loop. *)
val for_ : string -> from:expr -> below:expr -> ?step:expr -> stmt list -> stmt

(** [param ?kind name ty] builds a kernel parameter (a global buffer by
    default). *)
val param : ?kind:param_kind -> string -> ty -> param

(** {1 Work-group geometry} *)

val grouped : kernel -> bool
(** [local_size <> []]: the kernel uses the work-group execution tier. *)

val local3 : kernel -> int array
(** Work-group size padded to 3 dimensions (1 for missing entries).
    @raise Invalid_argument on more than 3 dims or a non-positive
    entry. *)

val group_counts : kernel -> global:int array -> int array
(** Per-dimension work-group counts for a padded 3-wide launch size.
    @raise Invalid_argument when a launch dimension is not divisible by
    the work-group size. *)

val contains_barrier : stmt list -> bool
(** Whether any statement (at any depth) is a [Barrier]. *)

(** {1 Simplification}

    Constant folding, light algebraic identities ([x+0], [x*1], constant
    conditionals) and bit-exact strength reduction ([Div]/[Mod] by a
    power of two on provably non-negative int operands, real division by
    an exact power of two); keeps generated index expressions readable
    and fast to interpret.  Semantics-preserving (property-tested).
    This is the algebraic-rule layer of the {!module:Opt} pass
    pipeline. *)

val is_nonneg : expr -> bool
(** Syntactic proof that an expression is a non-negative integer (and
    hence int-typed); gates the truncating-division strength
    reductions. *)

val simplify : expr -> expr
val simplify_stmt : stmt -> stmt
val simplify_kernel : kernel -> kernel

val offset_global_id : ?param_name:string -> kernel -> kernel
(** Ranged-launch variant of a 1-D kernel: appends a scalar int
    parameter (default ["goff"]) and rewrites every [get_global_id(0)]
    to [get_global_id(0) + goff], so launching [count] work-items with
    [goff = lo] covers exactly the flat index range [lo, lo + count) —
    the interior/frontier decomposition of the sharded backend.  The
    variant must be launched with an explicit NDRange; its [global_size]
    is a deliberately unresolvable placeholder.
    @raise Invalid_argument if the kernel already has such a parameter. *)
