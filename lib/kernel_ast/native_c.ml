(* Portable-C rendering of kernel ASTs for the native compiled backend.

   Where [Print] emits the OpenCL C *artifact* (the paper's listings),
   this module emits a kernel as a self-contained C99 translation unit
   that the system C compiler turns into a shared object ([Vgpu.Native]
   compiles, caches and dlopens it).  The rendering is semantics-exact
   against the reference interpreter and the closure JIT:

   - all real arithmetic is IEEE double ([Vgpu.Buffer] stores doubles
     even for single-precision kernels); single precision rounds on
     store to a global real buffer, exactly like [Exec]/[Jit];
   - ints are [int64_t] (OCaml's 63-bit ints embed exactly); [/], [%],
     [>>] and real->int casts truncate the same way on both sides;
   - real [Mod] is C [fmod] (= OCaml [Float.rem]); [Fmin]/[Fmax] are
     emitted as helpers replicating OCaml's [Float.min]/[Float.max]
     branch-for-branch (NaN propagation, [-0. < +0.]), not C's
     [fmin]/[fmax] whose NaN behaviour differs;
   - wherever the engines truncate a real to an int ([as_int]), the
     emitted C carries an explicit [(int64_t)] cast — C truthiness of a
     bare double would otherwise diverge from truncate-then-test;
   - [&&]/[||] short-circuit like the JIT (the interpreter evaluates
     both operands; observably identical on verified kernels).

   The fixed entry ABI (see {!entry_symbol}) receives the kernel's
   parameters split by kind — real buffers as [double*], int buffers as
   [int64_t*], scalars in two flat arrays — plus the NDRange sizes.
   The work-item loops live inside the entry, row-major z/y/x exactly
   like [Exec.launch]/[Jit.run_range]. *)

open Cast

let entry_symbol = "racs_kernel_entry"

(* How each parameter maps onto the entry ABI, in parameter order.
   Mirrors [Jit.compile]'s binding construction: slot indices count per
   category in order of appearance.  The host launcher uses this to
   marshal [Args.t] values, with the same scalar coercions as
   [Jit.bind] (real arg to int param truncates, int arg to real param
   widens). *)
type binding =
  | Arg_fbuf of int  (** real buffer -> [fb[slot]] *)
  | Arg_ibuf of int  (** int buffer -> [ib[slot]] *)
  | Arg_iscalar of int  (** int scalar -> [isc[slot]] *)
  | Arg_rscalar of int  (** real scalar -> [fsc[slot]] *)

let bindings (k : kernel) : binding list =
  let nf = ref 0 and ni = ref 0 and nis = ref 0 and nrs = ref 0 in
  List.map
    (fun p ->
      let next r =
        let s = !r in
        incr r;
        s
      in
      match (p.p_kind, p.p_ty) with
      | Global_buf, Real -> Arg_fbuf (next nf)
      | Global_buf, Int -> Arg_ibuf (next ni)
      | Scalar_param, Int -> Arg_iscalar (next nis)
      | Scalar_param, Real -> Arg_rscalar (next nrs))
    k.params

(* Identifier hygiene: kernel names come from the code generator and are
   already C identifiers, but they must not collide with C keywords or
   with the renderer's own [rk_]-prefixed temporaries and ABI names. *)
let c_reserved =
  [
    "auto"; "break"; "case"; "char"; "const"; "continue"; "default"; "do";
    "double"; "else"; "enum"; "extern"; "float"; "for"; "goto"; "if";
    "inline"; "int"; "long"; "register"; "restrict"; "return"; "short";
    "signed"; "sizeof"; "static"; "struct"; "switch"; "typedef"; "union";
    "unsigned"; "void"; "volatile"; "while"; "fb"; "ib"; "isc"; "fsc";
    "gsz"; "memset"; "fmod"; "sqrt"; "fabs"; "exp"; "log"; "sin"; "cos";
    "floor"; "signbit";
  ]

let mangle name =
  if List.mem name c_reserved then name ^ "_"
  else if String.length name >= 3 && String.sub name 0 3 = "rk_" then name ^ "_"
  else name

type slot =
  | S_scalar of ty
  | S_gbuf of ty  (* global buffer parameter *)
  | S_parr of ty * int  (* private (work-item local) array *)
  | S_larr of ty * int  (* work-group local array (grouped kernels) *)

type env = {
  slots : (string, slot) Hashtbl.t;
  mutable locals : (string * slot) list;  (* body-declared, reversed scan order *)
  env_grouped : bool;
  l3 : int array;  (* work-group size, [|1;1;1|] when flat *)
  sparams : (string, unit) Hashtbl.t;  (* scalar parameter names *)
  uniform_store : (string, unit) Hashtbl.t;
      (* loop variables of barrier-containing ("uniform") loops: stored
         as one plain scalar shared by the whole group *)
  uniform_vals : (string, unit) Hashtbl.t;
      (* per-work-item scalars whose value is provably the same in every
         lane at the current program point: legal in uniform-loop
         headers, rendered as [v[0]] there *)
  mutable in_uniform : bool;  (* rendering a uniform-loop header *)
}

let declare env name s =
  if not (Hashtbl.mem env.slots name) then begin
    Hashtbl.replace env.slots name s;
    env.locals <- (name, s) :: env.locals
  end

let group_threads env = env.l3.(0) * env.l3.(1) * env.l3.(2)

let build_env (k : kernel) =
  let is_grouped = grouped k in
  let env =
    {
      slots = Hashtbl.create 32;
      locals = [];
      env_grouped = is_grouped;
      l3 = local3 k;
      sparams = Hashtbl.create 8;
      uniform_store = Hashtbl.create 4;
      uniform_vals = Hashtbl.create 8;
      in_uniform = false;
    }
  in
  List.iter
    (fun p ->
      match p.p_kind with
      | Global_buf -> Hashtbl.replace env.slots p.p_name (S_gbuf p.p_ty)
      | Scalar_param ->
          Hashtbl.replace env.slots p.p_name (S_scalar p.p_ty);
          Hashtbl.replace env.sparams p.p_name ())
    k.params;
  let rec scan = function
    | Decl (t, v, _) -> declare env v (S_scalar t)
    | Decl_arr (t, v, n) -> declare env v (S_parr (t, n))
    | Decl_local (t, v, n) ->
        (* flat model: a local array is indistinguishable from private *)
        declare env v (if is_grouped then S_larr (t, n) else S_parr (t, n))
    | If (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | For l ->
        declare env l.var (S_scalar Int);
        if is_grouped && contains_barrier l.body then
          Hashtbl.replace env.uniform_store l.var ();
        List.iter scan l.body
    | Assign _ | Store _ | Barrier | Comment _ -> ()
  in
  List.iter scan k.body;
  env.locals <- List.rev env.locals;
  env

(* Whether [v] may appear in a uniform-loop header and how it renders
   there: scalar parameters and uniform-loop variables are plain shared
   scalars; a per-work-item scalar is only legal when its value is
   provably lane-uniform (then any lane's slot serves). *)
let is_uniform_name env v =
  Hashtbl.mem env.sparams v
  || Hashtbl.mem env.uniform_store v
  || Hashtbl.mem env.uniform_vals v

(* Work-group-uniform expressions: same value in every lane of a group.
   Conservative — no loads, no per-lane ids. *)
let rec expr_uniform env = function
  | Int_lit _ | Real_lit _ | Global_size _ | Local_size _ | Group_id _ -> true
  | Global_id _ | Local_id _ | Load _ -> false
  | Var v -> is_uniform_name env v
  | Unop (_, a) -> expr_uniform env a
  | Binop (_, a, b) -> expr_uniform env a && expr_uniform env b
  | Ternary (c, a, b) -> expr_uniform env c && expr_uniform env a && expr_uniform env b
  | Call (_, args) -> List.for_all (expr_uniform env) args

(* How a scalar variable reference renders at the current point. *)
let var_ref env v =
  let n = mangle v in
  if not env.env_grouped then n
  else
    match Hashtbl.find_opt env.slots v with
    | Some (S_scalar _) when Hashtbl.mem env.sparams v || Hashtbl.mem env.uniform_store v
      ->
        n
    | Some (S_scalar _) -> if env.in_uniform then n ^ "[0]" else n ^ "[rk_l]"
    | _ -> n

(* Expression typing, mirroring [Jit.type_of] exactly: C promotion
   rules, builtin calls are real, comparisons and logic are int. *)
let rec type_of env (e : expr) : ty =
  match e with
  | Int_lit _ | Global_id _ | Global_size _ | Group_id _ | Local_id _ | Local_size _ ->
      Int
  | Real_lit _ -> Real
  | Var v -> (
      match Hashtbl.find_opt env.slots v with
      | Some (S_scalar t) -> t
      | Some _ -> failwith (Printf.sprintf "native_c: %s is not a scalar" v)
      | None -> failwith (Printf.sprintf "native_c: unbound variable %s" v))
  | Load (b, _) -> (
      match Hashtbl.find_opt env.slots b with
      | Some (S_gbuf t | S_parr (t, _) | S_larr (t, _)) -> t
      | Some _ -> failwith (Printf.sprintf "native_c: %s is not an array" b)
      | None -> failwith (Printf.sprintf "native_c: unbound buffer %s" b))
  | Unop ((To_real | Round), _) -> Real
  | Unop ((To_int | Not), _) -> Int
  | Unop (Neg, a) -> type_of env a
  | Ternary (_, a, b) -> (
      match (type_of env a, type_of env b) with Int, Int -> Int | _ -> Real)
  | Call (_, _) -> Real
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> (
      match (type_of env a, type_of env b) with Int, Int -> Int | _ -> Real)
  | Binop (_, _, _) -> Int

(* C precedence levels, as in [Print]. *)
let binop_prec = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | BAnd -> 5
  | And -> 4
  | Or -> 3

let builtin_name = function
  | Sqrt -> "sqrt"
  | Fabs -> "fabs"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Floor -> "floor"
  | Fmin -> "rk_fmin"  (* OCaml Float.min semantics, see preamble *)
  | Fmax -> "rk_fmax"

let real_lit_c r =
  if Float.is_nan r then "(0.0/0.0)"
  else if r = Float.infinity then "(1.0/0.0)"
  else if r = Float.neg_infinity then "(-1.0/0.0)"
  else
    let s = Printf.sprintf "%.17g" r in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

(* Emit [e] as a C expression of its own type into [buf], parenthesised
   for an enclosing precedence [prec].  [as_int] is the one coercion
   point: an explicit truncating cast where the engines truncate.
   Int-in-real position needs nothing — C's implicit int64->double
   promotion is the engines' exact widening. *)
let rec emit env buf ~prec (e : expr) =
  let add = Buffer.add_string buf in
  match e with
  | Int_lit n ->
      add (if n < 0 then Printf.sprintf "(%dLL)" n else Printf.sprintf "%dLL" n)
  | Real_lit r -> add (real_lit_c r)
  | Var v -> add (var_ref env v)
  | Global_id d -> add (Printf.sprintf "rk_g%d" d)
  | Global_size d -> add (Printf.sprintf "rk_gs%d" d)
  | Group_id d ->
      (* flat model: every work-item is its own group *)
      add (Printf.sprintf (if env.env_grouped then "rk_wg%d" else "rk_g%d") d)
  | Local_id d ->
      add (if env.env_grouped && d < 3 then Printf.sprintf "rk_l%d" d else "0LL")
  | Local_size d ->
      add (Printf.sprintf "%dLL" (if env.env_grouped && d < 3 then env.l3.(d) else 1))
  | Load (b, i) -> (
      match Hashtbl.find_opt env.slots b with
      | Some (S_parr (_, n)) when env.env_grouped ->
          (* per-work-item array: this lane's slice *)
          add (mangle b);
          add (Printf.sprintf "[rk_l * %dLL + " n);
          as_int_prec env buf ~prec:10 i;
          add "]"
      | _ ->
          add (mangle b);
          add "[";
          as_int env buf i;
          add "]")
  | Call (f, args) ->
      add (builtin_name f);
      add "(";
      List.iteri
        (fun i a ->
          if i > 0 then add ", ";
          as_real env buf a)
        args;
      add ")"
  | Unop (Neg, a) ->
      add "(-";
      emit env buf ~prec:11 a;
      add ")"
  | Unop (Not, a) ->
      (* !x on the truncated int, as in the engines *)
      add "(!";
      as_int_atom env buf a;
      add ")"
  | Unop (To_real, a) ->
      add "(double)(";
      emit env buf ~prec:0 a;
      add ")"
  | Unop (Round, a) ->
      (* float32 store-rounding on a register value: narrow and widen
         back, exactly what a round-trip through a float buffer does *)
      add "(double)(float)(";
      emit env buf ~prec:0 a;
      add ")"
  | Unop (To_int, a) ->
      (* the JIT routes To_int through as_real first; keep the exact
         widen-then-truncate round-trip *)
      add "(int64_t)(double)(";
      emit env buf ~prec:0 a;
      add ")"
  | Ternary (c, a, b) ->
      if prec > 1 then add "(";
      as_int_atom env buf c;
      add " ? ";
      emit env buf ~prec:2 a;
      add " : ";
      emit env buf ~prec:1 b;
      if prec > 1 then add ")"
  | Binop (Mod, a, b) when type_of env e = Real ->
      add "fmod(";
      as_real env buf a;
      add ", ";
      as_real env buf b;
      add ")"
  | Binop (((And | Or) as op), a, b) ->
      let p = binop_prec op in
      if prec > p then add "(";
      as_int_atom env buf a;
      add (if op = And then " && " else " || ");
      as_int_atom env buf b;
      if prec > p then add ")"
  | Binop (((Shr | BAnd) as op), a, b) ->
      let p = binop_prec op in
      if prec > p then add "(";
      as_int_prec env buf ~prec:p a;
      add (if op = Shr then " >> " else " & ");
      as_int_prec env buf ~prec:(p + 1) b;
      if prec > p then add ")"
  | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) ->
      (* mixed comparisons promote the int side to double, exactly the
         engines' [as_real]-both-sides path *)
      let p = binop_prec op in
      if prec > p then add "(";
      emit env buf ~prec:p a;
      add
        (match op with
        | Eq -> " == "
        | Ne -> " != "
        | Lt -> " < "
        | Le -> " <= "
        | Gt -> " > "
        | _ -> " >= ");
      emit env buf ~prec:(p + 1) b;
      if prec > p then add ")"
  | Binop (op, a, b) ->
      (* arithmetic: both-int stays int64, otherwise C promotes the int
         side to double — the engines' exact widening *)
      let p = binop_prec op in
      if prec > p then add "(";
      emit env buf ~prec:p a;
      add
        (match op with
        | Add -> " + "
        | Sub -> " - "
        | Mul -> " * "
        | Div -> " / "
        | Mod -> " % "
        | _ -> assert false);
      emit env buf ~prec:(p + 1) b;
      if prec > p then add ")"

(* [e] in an int context: emit directly when int-typed, else the
   engines' truncation as an explicit cast (a cast is self-delimiting,
   so [prec] variants only matter for the int-typed path). *)
and as_int env buf e = as_int_prec env buf ~prec:0 e

and as_int_prec env buf ~prec e =
  if type_of env e = Int then emit env buf ~prec e
  else begin
    Buffer.add_string buf "(int64_t)(";
    emit env buf ~prec:0 e;
    Buffer.add_string buf ")"
  end

and as_int_atom env buf e = as_int_prec env buf ~prec:11 e

and as_real env buf e = emit env buf ~prec:0 e

let expr_c env e =
  let buf = Buffer.create 64 in
  emit env buf ~prec:0 e;
  Buffer.contents buf

let as_int_c env e =
  let buf = Buffer.create 64 in
  as_int env buf e;
  Buffer.contents buf

let c_ty = function Int -> "int64_t" | Real -> "double"

let comment_c c =
  (* keep comments but never let them terminate early *)
  let buf = Buffer.create (String.length c + 8) in
  String.iteri
    (fun i ch ->
      if ch = '/' && i > 0 && c.[i - 1] = '*' then Buffer.add_string buf " /"
      else Buffer.add_char buf ch)
    c;
  Buffer.contents buf

(* Statement emission.  All declarations are hoisted to entry scope
   (built from [env.locals]); the statement stream only assigns.  A
   [Decl] with no initializer zeroes its variable like the reference
   interpreter; [Decl_arr] re-zeroes per evaluation (fresh per
   work-item in the interpreter). *)
let rec emit_stmt env buf ~indent ~round_store (s : stmt) =
  let pad = String.make indent ' ' in
  let add = Buffer.add_string buf in
  match s with
  | Comment c -> add (Printf.sprintf "%s/* %s */\n" pad (comment_c c))
  | Decl (t, v, init) ->
      let rhs =
        match (t, init) with
        | Int, None -> "0"
        | Real, None -> "0.0"
        | Int, Some e -> as_int_c env e
        | Real, Some e -> expr_c env e
      in
      add (Printf.sprintf "%s%s = %s;\n" pad (var_ref env v) rhs)
  | Decl_arr (_, v, n) | Decl_local (_, v, n) -> (
      match Hashtbl.find_opt env.slots v with
      | Some (S_larr _) ->
          (* group-shared storage, zeroed once at group entry *)
          ()
      | Some (S_parr _) when env.env_grouped ->
          (* fresh per work-item: zero this lane's slice *)
          add
            (Printf.sprintf "%smemset(&%s[rk_l * %dLL], 0, %d * sizeof(%s[0]));\n" pad
               (mangle v) n n (mangle v))
      | _ ->
          add (Printf.sprintf "%smemset(%s, 0, sizeof(%s));\n" pad (mangle v) (mangle v))
      )
  | Barrier ->
      if env.env_grouped then
        failwith "native_c: barrier under work-item-varying control flow"
      (* flat model: each work-item is a singleton group; a barrier is a
         no-op *)
  | Assign (v, e) ->
      if env.env_grouped && Hashtbl.mem env.sparams v then
        failwith
          (Printf.sprintf "native_c: assignment to scalar parameter %s in grouped kernel"
             v);
      let rhs =
        match Hashtbl.find_opt env.slots v with
        | Some (S_scalar Int) -> as_int_c env e
        | Some (S_scalar Real) -> expr_c env e
        | _ -> failwith (Printf.sprintf "native_c: assign to unbound %s" v)
      in
      add (Printf.sprintf "%s%s = %s;\n" pad (var_ref env v) rhs)
  | Store (b, i, e) ->
      let lhs =
        match Hashtbl.find_opt env.slots b with
        | Some (S_parr (_, n)) when env.env_grouped ->
            let buf' = Buffer.create 32 in
            as_int_prec env buf' ~prec:10 i;
            Printf.sprintf "%s[rk_l * %dLL + %s]" (mangle b) n (Buffer.contents buf')
        | _ -> Printf.sprintf "%s[%s]" (mangle b) (as_int_c env i)
      in
      let rhs =
        match Hashtbl.find_opt env.slots b with
        | Some (S_gbuf Int | S_parr (Int, _) | S_larr (Int, _)) -> as_int_c env e
        | Some (S_gbuf Real) when round_store ->
            (* single precision: round on store to a global real buffer,
               always through double first so an int value takes the
               same widen-then-round path as [Jit]'s float_of_int +
               round32 *)
            Printf.sprintf "(double)(float)(double)(%s)" (expr_c env e)
        | Some (S_gbuf Real | S_parr (Real, _) | S_larr (Real, _)) -> expr_c env e
        | _ -> failwith (Printf.sprintf "native_c: store to unbound %s" b)
      in
      add (Printf.sprintf "%s%s = %s;\n" pad lhs rhs)
  | If (c, t, f) ->
      add (Printf.sprintf "%sif (%s) {\n" pad (as_int_c env c));
      List.iter (emit_stmt env buf ~indent:(indent + 2) ~round_store) t;
      if f <> [] then begin
        add (Printf.sprintf "%s} else {\n" pad);
        List.iter (emit_stmt env buf ~indent:(indent + 2) ~round_store) f
      end;
      add (Printf.sprintf "%s}\n" pad)
  | For l ->
      (* Replicates [Jit]'s loop structure literally: a hidden iterator
         advances by [step] evaluated after the body; the loop variable
         is the entry-scope register, assigned at the top of each
         iteration; [bound] is re-evaluated per iteration before that
         assignment. *)
      let it = Printf.sprintf "rk_it_%s" (mangle l.var) in
      add (Printf.sprintf "%s{\n" pad);
      add (Printf.sprintf "%s  int64_t %s = %s;\n" pad it (as_int_c env l.init));
      add (Printf.sprintf "%s  while (%s < (%s)) {\n" pad it (as_int_c env l.bound));
      add (Printf.sprintf "%s    %s = %s;\n" pad (var_ref env l.var) it);
      List.iter (emit_stmt env buf ~indent:(indent + 4) ~round_store) l.body;
      add (Printf.sprintf "%s    %s += %s;\n" pad it (as_int_c env l.step));
      add (Printf.sprintf "%s  }\n" pad);
      add (Printf.sprintf "%s}\n" pad)

(* Lane-uniformity bookkeeping while walking a group-scope statement
   spine: a per-work-item scalar is value-uniform after a spine-level
   [Decl]/[Assign] whose right-hand side is itself uniform (every lane
   executes the spine, so every slot holds the same value); any write
   under divergent control conservatively revokes it. *)
let rec kill_uniform env = function
  | Decl (_, v, _) | Decl_arr (_, v, _) | Decl_local (_, v, _) | Assign (v, _) ->
      Hashtbl.remove env.uniform_vals v
  | If (_, a, b) ->
      List.iter (kill_uniform env) a;
      List.iter (kill_uniform env) b
  | For l ->
      Hashtbl.remove env.uniform_vals l.var;
      List.iter (kill_uniform env) l.body
  | Store _ | Barrier | Comment _ -> ()

let update_uniform env s =
  match s with
  | Decl (_, v, None) -> Hashtbl.replace env.uniform_vals v ()
  | Decl (_, v, Some e) | Assign (v, e) ->
      if expr_uniform env e then Hashtbl.replace env.uniform_vals v ()
      else Hashtbl.remove env.uniform_vals v
  | If _ | For _ -> kill_uniform env s
  | Decl_arr _ | Decl_local _ | Store _ | Barrier | Comment _ -> ()

(* Render [e] for a uniform-loop header: per-work-item scalars read lane
   0's slot (legal only because the value is lane-uniform there). *)
let uniform_int_c env e =
  env.in_uniform <- true;
  let s = as_int_c env e in
  env.in_uniform <- false;
  s

(* Grouped lowering: barrier synchronisation becomes loop fission.  The
   statement spine of a group's body is split at every [Barrier]; each
   barrier-free segment runs inside its own loop over the group's
   work-items (lid order, matching the interpreter's resume order), so
   all lanes finish a segment before any lane starts the next — exactly
   the barrier guarantee for race-free kernels.  A barrier-containing
   loop must have group-uniform bounds; it is emitted once at group
   scope (its variable is a plain shared scalar) with its body
   recursively fissioned.  A barrier under a conditional is divergence
   and rejected outright — [Check.barrier_verdict] reports these
   statically. *)
let rec emit_group_body env buf ~indent ~round_store (stmts : stmt list) =
  let pad = String.make indent ' ' in
  let add = Buffer.add_string buf in
  let flush seg =
    match List.rev seg with
    | [] -> ()
    | body ->
        let l0 = env.l3.(0) and l1 = env.l3.(1) and l2 = env.l3.(2) in
        add (Printf.sprintf "%sfor (int64_t rk_l2 = 0; rk_l2 < %dLL; rk_l2++)\n" pad l2);
        add (Printf.sprintf "%sfor (int64_t rk_l1 = 0; rk_l1 < %dLL; rk_l1++)\n" pad l1);
        add (Printf.sprintf "%sfor (int64_t rk_l0 = 0; rk_l0 < %dLL; rk_l0++)\n" pad l0);
        add (Printf.sprintf "%s{\n" pad);
        add
          (Printf.sprintf "%s  const int64_t rk_l = (rk_l2 * %dLL + rk_l1) * %dLL + rk_l0;\n"
             pad l1 l0);
        add (Printf.sprintf "%s  const int64_t rk_g0 = rk_wg0 * %dLL + rk_l0;\n" pad l0);
        add (Printf.sprintf "%s  const int64_t rk_g1 = rk_wg1 * %dLL + rk_l1;\n" pad l1);
        add (Printf.sprintf "%s  const int64_t rk_g2 = rk_wg2 * %dLL + rk_l2;\n" pad l2);
        add
          (Printf.sprintf "%s  (void)rk_l; (void)rk_g0; (void)rk_g1; (void)rk_g2;\n" pad);
        List.iter (emit_stmt env buf ~indent:(indent + 2) ~round_store) body;
        add (Printf.sprintf "%s}\n" pad)
  in
  let rec go seg = function
    | [] -> flush seg
    | Barrier :: rest ->
        flush seg;
        go [] rest
    | (For l as s) :: rest when contains_barrier l.body ->
        flush seg;
        update_uniform env s;
        emit_uniform_loop env buf ~indent ~round_store l;
        go [] rest
    | If (_, t, f) :: _ when contains_barrier t || contains_barrier f ->
        failwith "native_c: barrier under conditional control flow"
    | s :: rest ->
        update_uniform env s;
        go (s :: seg) rest
  in
  go [] stmts

and emit_uniform_loop env buf ~indent ~round_store (l : for_loop) =
  let ok e = expr_uniform env e in
  if not (ok l.init && ok l.bound && ok l.step) then
    failwith "native_c: barrier inside a loop with work-item-varying bounds";
  let pad = String.make indent ' ' in
  let add = Buffer.add_string buf in
  let it = Printf.sprintf "rk_it_%s" (mangle l.var) in
  add (Printf.sprintf "%s{\n" pad);
  add (Printf.sprintf "%s  int64_t %s = %s;\n" pad it (uniform_int_c env l.init));
  add (Printf.sprintf "%s  while (%s < (%s)) {\n" pad it (uniform_int_c env l.bound));
  add (Printf.sprintf "%s    %s = %s;\n" pad (var_ref env l.var) it);
  emit_group_body env buf ~indent:(indent + 4) ~round_store l.body;
  add (Printf.sprintf "%s    %s += %s;\n" pad it (uniform_int_c env l.step));
  add (Printf.sprintf "%s  }\n" pad);
  add (Printf.sprintf "%s}\n" pad);
  (* the header strings above are re-evaluated every iteration: their
     variables must still be uniform after the body's own writes *)
  if not (ok l.bound && ok l.step) then
    failwith "native_c: barrier-loop bound made work-item-varying inside the loop"

let preamble =
  "#include <stdint.h>\n#include <math.h>\n#include <string.h>\n\n\
   #if defined(_WIN32)\n\
   #  define RK_EXPORT __declspec(dllexport)\n\
   #else\n\
   #  define RK_EXPORT __attribute__((visibility(\"default\")))\n\
   #endif\n\n\
   /* OCaml Float.min / Float.max semantics: NaN in either operand\n\
   \ * propagates, and -0.0 orders below +0.0.  C fmin/fmax differ\n\
   \ * (they prefer the non-NaN operand), so they are not used. */\n\
   static inline double rk_fmin(double x, double y) {\n\
   \  if (y > x || (!signbit(y) && signbit(x))) return (y != y) ? y : x;\n\
   \  return (x != x) ? x : y;\n\
   }\n\
   static inline double rk_fmax(double x, double y) {\n\
   \  if (y < x || (signbit(y) && !signbit(x))) return (y != y) ? y : x;\n\
   \  return (x != x) ? x : y;\n\
   }\n"

(* {2 Write-set analysis for restrict emission}

   Which global-buffer parameters does the kernel store to?  The
   principled answer comes from [Footprint]'s provenance-carrying
   abstract interpretation (its write side counts every static store
   site, indirect scatters included); a plain syntactic walk over
   [Store] targets is unioned in as a conservative floor so a footprint
   blind spot can never demote a written buffer to read-only.  The
   result licenses the C qualifiers below: [const] on read-only buffer
   params unconditionally, and [restrict] only under the launcher's
   no-aliased-bindings guarantee ([Vgpu.Native.launch] checks it per
   launch and falls back to a [~noalias:false] compilation). *)

let written_params (k : kernel) : string list =
  let syntactic = Hashtbl.create 8 in
  let rec stmt = function
    | Store (n, _, _) -> Hashtbl.replace syntactic n ()
    | If (_, t, f) ->
        List.iter stmt t;
        List.iter stmt f
    | For l -> List.iter stmt l.body
    | Decl _ | Decl_arr _ | Decl_local _ | Assign _ | Barrier | Comment _ -> ()
  in
  List.iter stmt k.body;
  let fp_writes =
    match Footprint.infer (Check.env ()) k with
    | fp -> (
        fun n ->
          match Footprint.find fp n with
          | Some b -> b.Footprint.fb_write.Footprint.s_sites > 0
          | None -> false)
    | exception _ -> fun _ -> false
  in
  List.filter_map
    (fun p ->
      if p.p_kind = Global_buf && (Hashtbl.mem syntactic p.p_name || fp_writes p.p_name) then
        Some p.p_name
      else None)
    k.params

let kernel_source ?(noalias = true) (k : kernel) : string =
  let env = build_env k in
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add
    (Printf.sprintf "/* kernel %s (%s precision) — generated by the racs native backend */\n"
       k.name
       (match k.precision with Single -> "single" | Double -> "double"));
  add preamble;
  add "\n";
  add
    (Printf.sprintf
       "RK_EXPORT void %s(double **fb, int64_t **ib, const int64_t *isc,\n\
       \                  const double *fsc, const int64_t *gsz)\n{\n"
       entry_symbol);
  add "  (void)fb; (void)ib; (void)isc; (void)fsc;\n";
  (* parameter prologue, in [bindings] order: read-only buffers (proven
     by [written_params]) are [const]; [restrict] is emitted only when
     the launcher vouches that no written buffer aliases another
     binding *)
  let written = written_params k in
  let quals name =
    let cst = if List.mem name written then "" else "const " in
    let res = if noalias then " restrict" else "" in
    (cst, res)
  in
  List.iter2
    (fun p b ->
      let n = mangle p.p_name in
      match b with
      | Arg_fbuf s ->
          let cst, res = quals p.p_name in
          add (Printf.sprintf "  %sdouble *%s %s = fb[%d];\n" cst res n s)
      | Arg_ibuf s ->
          let cst, res = quals p.p_name in
          add (Printf.sprintf "  %sint64_t *%s %s = ib[%d];\n" cst res n s)
      | Arg_iscalar s -> add (Printf.sprintf "  int64_t %s = isc[%d];\n" n s)
      | Arg_rscalar s -> add (Printf.sprintf "  double %s = fsc[%d];\n" n s))
    k.params (bindings k);
  add "  const int64_t rk_gs0 = gsz[0];\n";
  add "  const int64_t rk_gs1 = gsz[1];\n";
  add "  const int64_t rk_gs2 = gsz[2];\n";
  add "  (void)rk_gs0; (void)rk_gs1; (void)rk_gs2;\n";
  (* hoisted entry-scope locals, zero-initialised like fresh registers;
     grouped kernels widen per-work-item storage to one slot per lane *)
  let gthreads = group_threads env in
  List.iter
    (fun (v, s) ->
      match s with
      | S_scalar t when env.env_grouped && not (Hashtbl.mem env.uniform_store v) ->
          add (Printf.sprintf "  %s %s[%d] = {0};\n" (c_ty t) (mangle v) gthreads)
      | S_scalar t ->
          add
            (Printf.sprintf "  %s %s = %s;\n" (c_ty t) (mangle v)
               (match t with Int -> "0" | Real -> "0.0"))
      | S_parr (t, n) ->
          let n = if env.env_grouped then gthreads * n else n in
          add (Printf.sprintf "  %s %s[%d] = {0};\n" (c_ty t) (mangle v) n)
      | S_larr (t, n) -> add (Printf.sprintf "  %s %s[%d];\n" (c_ty t) (mangle v) n)
      | S_gbuf _ -> assert false)
    env.locals;
  let round_store = k.precision = Single in
  if not env.env_grouped then begin
    (* the NDRange loop nest: row-major z/y/x like Exec.launch/Jit.run_range *)
    add "  for (int64_t rk_g2 = 0; rk_g2 < rk_gs2; rk_g2++)\n";
    add "  for (int64_t rk_g1 = 0; rk_g1 < rk_gs1; rk_g1++)\n";
    add "  for (int64_t rk_g0 = 0; rk_g0 < rk_gs0; rk_g0++)\n";
    add "  {\n";
    List.iter (emit_stmt env buf ~indent:4 ~round_store) k.body;
    add "  }\n}\n"
  end
  else begin
    (* group-at-a-time: row-major z/y/x over work-groups (the launcher
       validates that the NDRange divides by the work-group size) *)
    add
      (Printf.sprintf "  for (int64_t rk_wg2 = 0; rk_wg2 < rk_gs2 / %dLL; rk_wg2++)\n"
         env.l3.(2));
    add
      (Printf.sprintf "  for (int64_t rk_wg1 = 0; rk_wg1 < rk_gs1 / %dLL; rk_wg1++)\n"
         env.l3.(1));
    add
      (Printf.sprintf "  for (int64_t rk_wg0 = 0; rk_wg0 < rk_gs0 / %dLL; rk_wg0++)\n"
         env.l3.(0));
    add "  {\n";
    List.iter
      (fun (v, s) ->
        match s with
        | S_larr _ ->
            add (Printf.sprintf "    memset(%s, 0, sizeof(%s));\n" (mangle v) (mangle v))
        | _ -> ())
      env.locals;
    Hashtbl.reset env.uniform_vals;
    emit_group_body env buf ~indent:4 ~round_store k.body;
    add "  }\n}\n"
  end;
  Buffer.contents buf
