(** Static per-work-item resource analysis of a kernel AST.

    Extracts, per update, the global-memory traffic (per buffer, with an
    indirect-access flag for gather/scatter through loaded indices) and
    the floating-point work.  Loops multiply their body by the trip
    count; conditionals count the then-branch — the guarded fast path
    that active work-items execute.

    This feeds the roofline model ({!module:Vgpu.Perf_model}); the counts
    correspond to the per-update operation counts the paper reports in
    §VII-B2. *)

(** Access statistics for one global buffer. *)
type access = {
  mutable loads : float;
  mutable stores : float;
  mutable indirect : bool;
      (** true when any access index depends on a value loaded from
          memory (the [idx = boundaryIndices[i]] idiom) *)
  buf_ty : Cast.ty;
}

type t = {
  per_buffer : (string, access) Hashtbl.t;
  mutable flops : float;
  mutable iops : float;
  mutable local_loads : float;
      (** per-work-item loads from [__local] arrays (work-group tier) *)
  mutable local_stores : float;
      (** per-work-item stores to [__local] arrays *)
}

val kernel_counts : ?param_value:(string -> int option) -> Cast.kernel -> t
(** Per-work-item resource usage.  [param_value] resolves scalar
    parameters appearing as loop bounds. *)

(** {1 Aggregates} *)

val fold_buffers : t -> ('a -> string -> access -> 'a) -> 'a -> 'a
val total_loads : t -> float
val total_stores : t -> float
val global_accesses : t -> float
val local_accesses : t -> float

val elem_bytes : precision:Cast.precision -> Cast.ty -> float
(** Bytes per element of a buffer type at a given precision. *)

val bytes : precision:Cast.precision -> t -> float
(** Total bytes of global traffic per work-item, before the performance
    model's caching/coalescing refinements. *)

val pp : Format.formatter -> t -> unit
