(** Optimization pipeline over kernel ASTs.

    Runs after code generation and before JIT compilation or C emission.
    Passes, in order: algebraic simplification and constant folding
    (via {!Cast.simplify_kernel}, which includes bit-exact strength
    reduction), full unrolling of small constant-trip loops,
    common-subexpression elimination into fresh scalar temporaries,
    loop-invariant code motion, a second folding pass, and
    dead-store/dead-declaration elimination.

    All passes are semantics-preserving bit-for-bit: hoisting is
    restricted to load-free expressions that cannot trap (divisions only
    by non-zero literals) and whose free variables are in scope and
    unmodified over the region they move across.  See ARCHITECTURE.md
    for the full rules. *)

type report = {
  nodes_before : int;  (** AST nodes in the kernel before optimization *)
  nodes_after : int;   (** AST nodes after the full pipeline *)
  cse_fired : int;     (** expressions hoisted into CSE temporaries *)
  licm_hoisted : int;  (** expressions moved out of loops *)
  unrolled : int;      (** constant-trip loops fully unrolled *)
  strength_reduced : int;
      (** shift/mask operations standing in for div/mod after folding *)
  dead_removed : int;  (** dead declarations and assignments deleted *)
}

val optimize : ?unroll_budget:int -> Cast.kernel -> Cast.kernel * report
(** [optimize k] runs the full pass pipeline and returns the optimized
    kernel together with a per-kernel report.  Idempotent in effect:
    re-optimizing an optimized kernel is safe (and a near no-op).  When
    no pass changes the kernel, the input is returned {e physically}
    ([==]), so caches keyed on physical identity are shared between the
    raw and optimized kernel.  Unrolling is gated on the spliced body
    size ([trips * body nodes]) as well as the trip count, so
    large-bodied loops are left rolled.  [unroll_budget] overrides the
    default spliced-node gate (512): [0] disables unrolling entirely, a
    large value unrolls aggressively — the autotuner sweeps this knob. *)

val kernel_nodes : Cast.kernel -> int
(** Total AST node count of a kernel (body plus NDRange expressions);
    the size measure used in {!type:report}. *)

val pp_report : Format.formatter -> report -> unit
