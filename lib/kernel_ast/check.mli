(** Static race/bounds verifier over kernel ASTs.

    The reference interpreter's correctness argument rests on the claim
    that distinct work-items write distinct locations.  This module
    proves (or refutes) that claim per kernel and per buffer, instead of
    assuming it:

    - {b race freedom}: every store index is analysed as a symbolic
      affine function of [get_global_id]s and loop counters; a
      mixed-radix stride argument proves that no two distinct work-items
      can write the same cell.  Indirect scatters — the paper's
      [next\[bidx\[i\]\]] idiom — are reported as {!Unproven} and left
      to the shadow-memory sanitizer ({!module:Vgpu.Sanitizer}).
    - {b bounds safety}: every load/store index gets an interval from
      the NDRange extents, scalar-parameter values and loop ranges, and
      is checked against the declared buffer extent.

    An {!Unsafe} verdict is only ever reported with a machine-checked
    witness: candidate work-item pairs are re-executed by a concrete
    partial evaluator (loads opaque), so a witness names two work-items
    that really do collide (or one that really does access out of
    bounds) under the given parameter environment. *)

(** Concrete counter-example backing an [Unsafe] verdict. *)
type witness = {
  w_buf : string;
  w_index : int;  (** colliding / out-of-range linear index *)
  w_gids : (int * int * int) list;
      (** offending work-items: two for a race, one for a bounds
          violation *)
  w_detail : string;  (** human-readable explanation *)
}

type verdict =
  | Safe
  | Unsafe of witness
  | Unproven of string  (** reason the analysis could not decide *)

(** Per-buffer result: race freedom of its stores across work-items and
    bounds safety of all its accesses. *)
type buf_report = {
  b_name : string;
  b_kind : [ `Global | `Private | `Local ];
  b_elems : int option;  (** declared extent, when known *)
  b_race : verdict;
      (** for [`Local] buffers: no two work-items of a group store the
          same slot within one barrier-delimited phase *)
  b_bounds : verdict;
}

type report = {
  r_kernel : string;
  r_global : int option array;  (** resolved NDRange (3 dims) *)
  r_bufs : buf_report list;  (** sorted by buffer name *)
  r_barrier : verdict;
      (** barrier-divergence freedom: [Safe] when every barrier of a
          grouped kernel sits under work-group-uniform control flow;
          [Unsafe] carries two work-items of one group with different
          concrete barrier counts *)
}

(** Checking environment: resolves scalar parameters and buffer extents
    (e.g. from the live simulation state, or from the resolved arguments
    of a launch).  [global], when given, overrides the kernel's symbolic
    NDRange with the concrete launch size. *)
type env = {
  param_value : string -> int option;
  buffer_elems : string -> int option;
  global : int list option;
}

val env :
  ?param_value:(string -> int option) ->
  ?buffer_elems:(string -> int option) ->
  ?global:int list ->
  unit ->
  env

val const_eval : env -> Cast.expr -> int option
(** Constant-fold an expression through the parameter environment
    (mirrors [Analysis.eval_const]). *)

val resolve_gsize : env -> Cast.kernel -> int option array
(** The 3-dim NDRange of a launch: [env.global] when given, otherwise
    the kernel's symbolic [global_size] constant-folded through the
    environment; missing dimensions are 1. *)

val check : env -> Cast.kernel -> report

val ok : report -> bool
(** No [Unsafe] verdict in the report. *)

val fully_proven : report -> bool
(** Every verdict is [Safe]. *)

val unsafe_bufs : report -> buf_report list
(** The buffers carrying an [Unsafe] verdict (race or bounds). *)

val required_extents : env -> Cast.kernel -> (string * int) list
(** Minimal safe extent per global buffer — one past the largest
    statically derivable access index — for buffers whose every access
    has a known upper bound.  Used to size host-side allocations in the
    emitted C skeleton ({!module:Lift.Emit_c}). *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit
