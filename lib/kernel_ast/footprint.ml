(* Stencil-footprint inference: provenance-carrying abstract
   interpretation.

   The absval component mirrors [Check.eval] exactly; on top of it every
   value carries its *provenance* — the set of global-buffer cells
   (buffer name + affine index form) it was loaded from.  Provenance
   flows through arithmetic, scalar registers, private arrays, __local
   staging tiles and enclosing branch conditions, and reaches a global
   store as the store's read footprint.  Loop-carried registers are aged
   by one iteration per trip around a bounded fixpoint, which recovers
   the below-plane dependence of 2.5D-tiled kernels whose z-1 plane
   lives only in a register. *)

open Cast
open Domain
module SMap = Map.Make (String)

type axis = { ax_lo : int; ax_hi : int }

type side = {
  s_rel : axis array option;
  s_abs : itv array;
  s_lin : itv;
  s_indirect : bool;
  s_sites : int;
}

type buf = { fb_name : string; fb_read : side; fb_write : side; fb_exact : bool }

type t = {
  fp_kernel : string;
  fp_anchor : string option;
  fp_strides : int array;
  fp_bufs : buf list;
  fp_notes : string list;
}

(* -- Provenance-carrying values --------------------------------------- *)

type origin = { o_buf : string; o_form : aff option; o_exact : bool }
type fval = { fa : absval; fo : origin list }

let dedup_origins os = List.sort_uniq compare os
let union_origins a b = dedup_origins (List.rev_append a b)
let union_all oss = dedup_origins (List.concat oss)

(* A recorded access site on a global buffer. *)
type acc = { a_buf : string; a_store : bool; a_form : aff option; a_itv : itv }

type fenv = {
  e : Check.env;
  gsize : int option array;
  l3 : int array;
  is_grouped : bool;
  global_bufs : (string, unit) Hashtbl.t;
  arrays : (string, origin list ref) Hashtbl.t;
      (* private and __local arrays: union of origins ever stored; slots
         are not resolved, so a load sees every store's provenance *)
  loop_ranges : (int, itv) Hashtbl.t;
  mutable nloops : int;
  mutable locals : fval SMap.t;
  mutable accs : acc list;
  mutable flows : origin list;
      (* origins reaching a global store: value, index and enclosing
         branch conditions *)
  mutable track : (string * origin list ref) list;
      (* assignment interceptors for invariant-guarded loop-carried
         registers (see [scan_for]) *)
  mutable notes : string list;
}

let note fenv s = if not (List.mem s fenv.notes) then fenv.notes <- s :: fenv.notes

let record fenv b ~store (iv : fval) =
  if Hashtbl.mem fenv.global_bufs b then
    let form = if iv.fa.v_tainted then None else iv.fa.v_aff in
    fenv.accs <- { a_buf = b; a_store = store; a_form = form; a_itv = iv.fa.v_itv } :: fenv.accs

(* -- Abstract evaluation with provenance ------------------------------ *)

let pure av = { fa = av; fo = [] }

let rec eval fenv (expr : expr) : fval =
  match expr with
  | Int_lit n -> pure (known n)
  | Real_lit _ -> pure top
  | Global_id d ->
      let itv =
        if d < 3 then
          match fenv.gsize.(d) with
          | Some n -> { lo = Some 0; hi = Some (n - 1) }
          | None -> { lo = Some 0; hi = None }
        else top_itv
      in
      pure { v_itv = itv; v_aff = Some (aff_of_term (Tgid d)); v_tainted = false }
  | Global_size d -> (
      match (if d < 3 then fenv.gsize.(d) else None) with
      | Some n -> pure (known n)
      | None -> pure { top with v_itv = { lo = Some 1; hi = None } })
  | Group_id d ->
      if not fenv.is_grouped then eval fenv (Global_id d)
      else
        let itv =
          if d < 3 then
            match fenv.gsize.(d) with
            | Some n -> { lo = Some 0; hi = Some ((n / fenv.l3.(d)) - 1) }
            | None -> { lo = Some 0; hi = None }
          else top_itv
        in
        pure { v_itv = itv; v_aff = Some (aff_of_term (Tgrp d)); v_tainted = false }
  | Local_id d ->
      if not fenv.is_grouped then pure (known 0)
      else if d < 3 then
        pure
          {
            v_itv = { lo = Some 0; hi = Some (fenv.l3.(d) - 1) };
            v_aff = Some (aff_of_term (Tlid d));
            v_tainted = false;
          }
      else pure (known 0)
  | Local_size d -> pure (known (if d < 3 then fenv.l3.(d) else 1))
  | Var v -> (
      match SMap.find_opt v fenv.locals with
      | Some fv -> fv
      | None -> (
          match fenv.e.param_value v with
          | Some n -> pure (known n)
          | None ->
              pure { v_itv = top_itv; v_aff = Some (aff_of_term (Tparam v)); v_tainted = false }))
  | Load (b, i) ->
      let iv = eval fenv i in
      record fenv b ~store:false iv;
      let fo =
        if Hashtbl.mem fenv.global_bufs b then
          let form = if iv.fa.v_tainted then None else iv.fa.v_aff in
          union_origins [ { o_buf = b; o_form = form; o_exact = true } ] iv.fo
        else
          match Hashtbl.find_opt fenv.arrays b with
          | Some r -> union_origins !r iv.fo
          | None -> iv.fo
      in
      { fa = taint top; fo }
  | Unop (op, a) -> (
      let av = eval fenv a in
      match op with
      | Neg ->
          {
            fa =
              {
                v_itv = itv_neg av.fa.v_itv;
                v_aff = Option.map aff_neg av.fa.v_aff;
                v_tainted = av.fa.v_tainted;
              };
            fo = av.fo;
          }
      | Not -> { fa = { v_itv = bool_itv; v_aff = None; v_tainted = av.fa.v_tainted }; fo = av.fo }
      | To_real | To_int | Round ->
          { fa = { top with v_tainted = av.fa.v_tainted }; fo = av.fo })
  | Ternary (c, a, b) ->
      let cv = eval fenv c in
      let av = eval fenv a and bv = eval fenv b in
      {
        fa =
          {
            (join av.fa bv.fa) with
            v_tainted = cv.fa.v_tainted || av.fa.v_tainted || bv.fa.v_tainted;
          };
        fo = union_all [ cv.fo; av.fo; bv.fo ];
      }
  | Call (_, args) ->
      let vs = List.map (eval fenv) args in
      let tainted = List.exists (fun v -> v.fa.v_tainted) vs in
      { fa = { top with v_tainted = tainted }; fo = union_all (List.map (fun v -> v.fo) vs) }
  | Binop (op, a, b) -> (
      let av = eval fenv a and bv = eval fenv b in
      let fo = union_origins av.fo bv.fo in
      let tainted = av.fa.v_tainted || bv.fa.v_tainted in
      let ret v = { fa = { v with v_tainted = tainted }; fo } in
      match op with
      | Add ->
          ret
            {
              v_itv = itv_add av.fa.v_itv bv.fa.v_itv;
              v_aff = map2_opt aff_add av.fa.v_aff bv.fa.v_aff;
              v_tainted = false;
            }
      | Sub ->
          ret
            {
              v_itv = itv_sub av.fa.v_itv bv.fa.v_itv;
              v_aff = map2_opt aff_sub av.fa.v_aff bv.fa.v_aff;
              v_tainted = false;
            }
      | Mul ->
          let aff =
            match (av.fa.v_aff, bv.fa.v_aff) with
            | Some { base = k; coeffs = [] }, Some f | Some f, Some { base = k; coeffs = [] }
              ->
                Some (aff_scale k f)
            | _ -> None
          in
          ret { v_itv = itv_mul av.fa.v_itv bv.fa.v_itv; v_aff = aff; v_tainted = false }
      | Div -> (
          match bv.fa.v_aff with
          | Some { base = c; coeffs = [] } when c > 0 ->
              ret { top with v_itv = itv_div_pos av.fa.v_itv c }
          | _ -> ret top)
      | Mod -> (
          match bv.fa.v_aff with
          | Some { base = c; coeffs = [] } when c > 0 -> (
              match av.fa.v_itv.lo with
              | Some l when l >= 0 -> ret { top with v_itv = { lo = Some 0; hi = Some (c - 1) } }
              | _ -> ret { top with v_itv = { lo = Some (-(c - 1)); hi = Some (c - 1) } })
          | _ -> ret top)
      | Shr -> (
          match bv.fa.v_aff with
          | Some { base = k; coeffs = [] } when k >= 0 && k < 62 ->
              ret { top with v_itv = itv_div_pos av.fa.v_itv (1 lsl k) }
          | _ -> ret top)
      | BAnd -> (
          let mask v =
            match v.fa.v_aff with
            | Some { base = m; coeffs = [] } when m >= 0 -> Some m
            | _ -> None
          in
          match (mask av, mask bv) with
          | Some m, _ | _, Some m -> ret { top with v_itv = { lo = Some 0; hi = Some m } }
          | None, None -> ret top)
      | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> ret { top with v_itv = bool_itv })

(* -- Statement scan ---------------------------------------------------- *)

let rec assigned_vars acc = function
  | [] -> acc
  | Assign (v, _) :: tl -> assigned_vars (v :: acc) tl
  | If (_, t, f) :: tl -> assigned_vars (assigned_vars (assigned_vars acc t) f) tl
  | For l :: tl -> assigned_vars (assigned_vars (l.var :: acc) l.body) tl
  | _ :: tl -> assigned_vars acc tl

(* Variables bound afresh inside a statement list (so not loop-carried):
   declarations and nested loop counters. *)
let rec decl_vars acc = function
  | [] -> acc
  | Decl (_, v, _) :: tl -> decl_vars (v :: acc) tl
  | If (_, t, f) :: tl -> decl_vars (decl_vars (decl_vars acc t) f) tl
  | For l :: tl -> decl_vars (l.var :: decl_vars acc l.body) tl
  | _ :: tl -> decl_vars acc tl

(* Every [Assign] site with its enclosing branch conditions and whether
   it sits inside a nested loop. *)
let rec assign_sites conds nested acc = function
  | [] -> acc
  | Assign (v, _) :: tl -> assign_sites conds nested ((v, conds, nested) :: acc) tl
  | If (c, t, f) :: tl ->
      let acc = assign_sites (c :: conds) nested acc t in
      let acc = assign_sites (c :: conds) nested acc f in
      assign_sites conds nested acc tl
  | For l :: tl ->
      let acc = assign_sites conds true acc l.body in
      assign_sites conds nested acc tl
  | _ :: tl -> assign_sites conds nested acc tl

let rec expr_has_load = function
  | Load _ -> true
  | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _ | Local_id _
  | Local_size _ ->
      false
  | Unop (_, a) -> expr_has_load a
  | Binop (_, a, b) -> expr_has_load a || expr_has_load b
  | Ternary (a, b, c) -> expr_has_load a || expr_has_load b || expr_has_load c
  | Call (_, args) -> List.exists expr_has_load args

let rec expr_vars acc = function
  | Var v -> v :: acc
  | Int_lit _ | Real_lit _ | Global_id _ | Global_size _ | Group_id _ | Local_id _
  | Local_size _ ->
      acc
  | Load (_, i) -> expr_vars acc i
  | Unop (_, a) -> expr_vars acc a
  | Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Ternary (a, b, c) -> expr_vars (expr_vars (expr_vars acc a) b) c
  | Call (_, args) -> List.fold_left expr_vars acc args

let rec scan fenv ~ctx (s : stmt) =
  match s with
  | Comment _ | Barrier -> ()
  | Decl_local (_, v, _) | Decl_arr (_, v, _) ->
      (* [replace] would reset accumulated provenance on fixpoint
         re-scans; keep the existing cell *)
      if not (Hashtbl.mem fenv.arrays v) then Hashtbl.replace fenv.arrays v (ref [])
  | Decl (ty, v, init) ->
      let fv =
        match (ty, init) with
        | _, Some e -> eval fenv e
        | Int, None -> pure (known 0)
        | Real, None -> pure top
      in
      fenv.locals <- SMap.add v { fv with fo = union_origins fv.fo ctx } fenv.locals
  | Assign (v, e) ->
      let fv = eval fenv e in
      let os = union_origins fv.fo ctx in
      List.iter (fun (v', r) -> if v' = v then r := union_origins os !r) fenv.track;
      fenv.locals <- SMap.add v { fv with fo = os } fenv.locals
  | Store (b, i, e) ->
      let iv = eval fenv i in
      let ev = eval fenv e in
      record fenv b ~store:true iv;
      let os = union_all [ ev.fo; iv.fo; ctx ] in
      if Hashtbl.mem fenv.global_bufs b then fenv.flows <- union_origins os fenv.flows
      else (
        match Hashtbl.find_opt fenv.arrays b with
        | Some r -> r := union_origins os !r
        | None -> ())
  | If (c, t, f) ->
      let cv = eval fenv c in
      let ctx' = union_origins ctx cv.fo in
      let saved = fenv.locals in
      List.iter (scan fenv ~ctx:ctx') t;
      let after_t = fenv.locals in
      fenv.locals <- saved;
      List.iter (scan fenv ~ctx:ctx') f;
      let after_f = fenv.locals in
      fenv.locals <-
        SMap.merge
          (fun _ a b ->
            match (a, b) with
            | Some x, Some y -> Some { fa = join x.fa y.fa; fo = union_origins x.fo y.fo }
            | Some x, None | None, Some x -> Some { x with fa = top }
            | None, None -> None)
          after_t after_f
  | For l -> scan_for fenv ~ctx l

and scan_for fenv ~ctx l =
  let init_v = eval fenv l.init in
  let bound_v = eval fenv l.bound in
  let step_v = eval fenv l.step in
  let id = fenv.nloops in
  fenv.nloops <- id + 1;
  let range =
    { lo = init_v.fa.v_itv.lo; hi = Option.map (fun h -> h - 1) bound_v.fa.v_itv.hi }
  in
  let range = if init_v.fa.v_tainted || bound_v.fa.v_tainted then top_itv else range in
  Hashtbl.replace fenv.loop_ranges id range;
  let step_const =
    match step_v.fa.v_aff with Some a when is_const a -> Some a.base | _ -> None
  in
  let ctx = union_all [ ctx; init_v.fo; bound_v.fo; step_v.fo ] in
  let assigned = List.sort_uniq compare (assigned_vars [] l.body) in
  let carried =
    let decls = decl_vars [] l.body in
    List.filter (fun v -> not (List.mem v decls)) assigned
  in
  (* A carried register whose every assignment sits directly in the loop
     body under loop-invariant guards is assigned either every iteration
     or never (per work-item), so its value is exactly one iteration
     old: one aging of the assigned value suffices.  Variant guards can
     skip iterations, which the general fixpoint models as repeated
     aging. *)
  let bound_vars = (l.var :: decl_vars [] l.body) @ assigned in
  let invariant_cond c =
    (not (expr_has_load c))
    && List.for_all (fun v -> not (List.mem v bound_vars)) (expr_vars [] c)
  in
  let sites = assign_sites [] false [] l.body in
  let invariant_var v =
    List.for_all
      (fun (v', conds, nested) ->
        v' <> v || ((not nested) && List.for_all invariant_cond conds))
      sites
  in
  let inv = List.filter invariant_var carried in
  (* Age a loop-carried value by one iteration: what was [var] when the
     value was produced is [var - step] at the next use. *)
  let age os =
    List.map
      (fun o ->
        match o.o_form with
        | Some f when aff_coeff (Tloop id) f = 0 -> o
        | Some f -> (
            match step_const with
            | Some st -> { o with o_form = Some (aff_shift (Tloop id) (-st) f) }
            | None -> { o with o_form = None; o_exact = false })
        | None -> o)
      os
  in
  let seed =
    List.map
      (fun v ->
        ( v,
          match SMap.find_opt v fenv.locals with
          | Some fv -> dedup_origins fv.fo
          | None -> [] ))
      carried
  in
  let loop_fv =
    pure { v_itv = range; v_aff = Some (aff_of_term (Tloop id)); v_tainted = false }
  in
  let run_body cand =
    (* re-scans must hand nested loops the same ids *)
    fenv.nloops <- id + 1;
    let trackers = List.map (fun v -> (v, ref [])) inv in
    let saved_track = fenv.track in
    fenv.track <- trackers @ fenv.track;
    List.iter
      (fun (v, os) -> fenv.locals <- SMap.add v { fa = top; fo = os } fenv.locals)
      cand;
    fenv.locals <- SMap.add l.var loop_fv fenv.locals;
    List.iter (scan fenv ~ctx) l.body;
    fenv.track <- saved_track;
    List.map
      (fun (v, os) ->
        match List.assoc_opt v trackers with
        | Some r ->
            (* invariant guards: entry value is seed (never assigned) or
               the once-aged assigned value — not an aged entry value *)
            (v, union_origins (List.assoc v seed) (age !r))
        | None ->
            let endos =
              match SMap.find_opt v fenv.locals with Some fv -> fv.fo | None -> []
            in
            (v, union_origins os (age endos)))
      cand
  in
  let rec fix cand n =
    let cand' = run_body cand in
    if cand' = cand then cand'
    else if n = 0 then begin
      (* Did not stabilise (e.g. a register aged under a loop-varying
         condition): collapse the unstable provenance to "somewhere in
         the buffer" — sound, gives up on relative extents. *)
      let unstable =
        List.filter_map
          (fun (v, os) -> if List.assoc v cand <> os then Some v else None)
          cand'
      in
      note fenv
        (Fmt.str "loop-carried provenance through %s did not stabilise"
           (String.concat ", " unstable));
      List.map
        (fun (v, os) ->
          if List.mem v unstable then
            (v, dedup_origins (List.map (fun o -> { o with o_form = None; o_exact = false }) os))
          else (v, os))
        cand'
    end
    else fix cand' (n - 1)
  in
  let final = fix seed 4 in
  ignore (run_body final);
  (* Post-loop state: the counter may sit anywhere in its range; carried
     values keep both their last-iteration and accumulated provenance
     (trip count may be zero). *)
  List.iter
    (fun (v, os) ->
      let endos = match SMap.find_opt v fenv.locals with Some fv -> fv.fo | None -> [] in
      fenv.locals <- SMap.add v { fa = top; fo = union_origins os endos } fenv.locals)
    final;
  fenv.locals <-
    SMap.add l.var (pure { v_itv = range; v_aff = None; v_tainted = false }) fenv.locals

(* -- Offset decomposition ---------------------------------------------- *)

let check_strides strides =
  let n = Array.length strides in
  if n = 0 || strides.(0) <> 1 then
    invalid_arg "Footprint.infer: strides must start at 1";
  for a = 1 to n - 1 do
    if strides.(a) <= strides.(a - 1) then
      invalid_arg "Footprint.infer: strides must be strictly increasing"
  done

(* Balanced mixed-radix decomposition of a linear offset: nearest
   multiple at the highest stride first, remainder downwards, so [-Nx]
   reads as one step along y rather than Nx steps along x. *)
let decompose strides o =
  let n = Array.length strides in
  let res = Array.make n 0 in
  let rem = ref o in
  for a = n - 1 downto 1 do
    let s = strides.(a) in
    let q = if !rem >= 0 then (!rem + (s / 2)) / s else -((- !rem + (s / 2)) / s) in
    res.(a) <- q;
    rem := !rem - (q * s)
  done;
  res.(0) <- !rem;
  res

(* Split an affine index form into per-axis forms by decomposing its
   base and every coefficient. *)
let axis_forms strides (f : aff) =
  let n = Array.length strides in
  let bases = decompose strides f.base in
  let forms = Array.init n (fun a -> aff_const bases.(a)) in
  List.iter
    (fun (t, c) ->
      let cs = decompose strides c in
      Array.iteri
        (fun a ca ->
          if ca <> 0 then forms.(a) <- aff_add forms.(a) (aff_scale ca (aff_of_term t)))
        cs)
    f.coeffs;
  forms

let term_itv fenv = function
  | Tgid d ->
      if d < 3 then (
        match fenv.gsize.(d) with
        | Some n -> { lo = Some 0; hi = Some (n - 1) }
        | None -> { lo = Some 0; hi = None })
      else top_itv
  | Tlid d -> if fenv.is_grouped && d < 3 then { lo = Some 0; hi = Some (fenv.l3.(d) - 1) } else point 0
  | Tgrp d ->
      if d < 3 then (
        match fenv.gsize.(d) with
        | Some n -> { lo = Some 0; hi = Some ((n / fenv.l3.(d)) - 1) }
        | None -> { lo = Some 0; hi = None })
      else top_itv
  | Tloop id -> Option.value ~default:top_itv (Hashtbl.find_opt fenv.loop_ranges id)
  | Tparam v -> ( match fenv.e.param_value v with Some n -> point n | None -> top_itv)

let aff_itv fenv (f : aff) =
  List.fold_left
    (fun acc (t, c) -> itv_add acc (itv_mul (point c) (term_itv fenv t)))
    (point f.base) f.coeffs

(* -- Summarisation ----------------------------------------------------- *)

(* Build one side (reads or writes) of a buffer's footprint.  Returns the
   side plus whether inexact provenance contributed to its extents. *)
let side_of fenv strides ~anchors ~origin_forms accesses =
  let n = Array.length strides in
  let sites = List.length accesses in
  let indirect =
    List.exists (fun a -> a.a_form = None) accesses
    || List.exists (fun (f, _) -> f = None) origin_forms
  in
  let lin =
    match accesses with
    | [] -> top_itv
    | a0 :: tl -> List.fold_left (fun acc a -> itv_join acc a.a_itv) a0.a_itv tl
  in
  let abs =
    let per a =
      match a.a_form with
      | Some f -> Array.map (aff_itv fenv) (axis_forms strides f)
      | None -> Array.make n top_itv
    in
    match accesses with
    | [] -> Array.make n top_itv
    | a0 :: tl -> List.fold_left (fun acc a -> Array.map2 itv_join acc (per a)) (per a0) tl
  in
  let inexact = ref false in
  let rel =
    match anchors with
    | [] -> None
    | _ ->
        let forms =
          List.map (fun a -> (a.a_form, true)) accesses @ origin_forms
        in
        if List.exists (fun (f, _) -> f = None) forms then None
        else
          let offsets =
            List.concat_map
              (fun (f, ex) ->
                let f = Option.get f in
                List.map (fun anch -> (aff_sub f anch, ex)) anchors)
              forms
          in
          if List.exists (fun (d, _) -> not (is_const d)) offsets then None
          else begin
            let ext = Array.make n { ax_lo = 0; ax_hi = 0 } in
            List.iter
              (fun (d, ex) ->
                if not ex then inexact := true;
                let per = decompose strides d.base in
                Array.iteri
                  (fun a o ->
                    ext.(a) <- { ax_lo = min ext.(a).ax_lo o; ax_hi = max ext.(a).ax_hi o })
                  per)
              offsets;
            Some ext
          end
  in
  ( { s_rel = rel; s_abs = abs; s_lin = lin; s_indirect = indirect; s_sites = sites },
    !inexact )

let infer ?anchor ?(strides = [| 1 |]) (e : Check.env) (k : kernel) : t =
  check_strides strides;
  let fenv =
    {
      e;
      gsize = Check.resolve_gsize e k;
      l3 = local3 k;
      is_grouped = grouped k;
      global_bufs = Hashtbl.create 8;
      arrays = Hashtbl.create 4;
      loop_ranges = Hashtbl.create 4;
      nloops = 0;
      locals = SMap.empty;
      accs = [];
      flows = [];
      track = [];
      notes = [];
    }
  in
  List.iter
    (fun p -> if p.p_kind = Global_buf then Hashtbl.replace fenv.global_bufs p.p_name ())
    k.params;
  List.iter (scan fenv ~ctx:[]) k.body;
  let accs = List.sort_uniq compare fenv.accs in
  let flows = dedup_origins fenv.flows in
  let stores_of b = List.filter (fun a -> a.a_store && a.a_buf = b) accs in
  (* the anchor must have stores and all of them affine, otherwise the
     "work-item's cell" is not well defined *)
  let qualifies b =
    match stores_of b with [] -> false | ss -> List.for_all (fun a -> a.a_form <> None) ss
  in
  let anchor_buf =
    match anchor with
    | Some b ->
        if qualifies b then Some b
        else begin
          note fenv (Fmt.str "requested anchor %s has no affine stores" b);
          None
        end
    | None ->
        if qualifies "next" then Some "next"
        else
          let stored =
            List.sort_uniq compare
              (List.filter_map (fun a -> if a.a_store then Some a.a_buf else None) accs)
          in
          (match List.filter qualifies stored with [ b ] -> Some b | _ -> None)
  in
  if anchor_buf = None then note fenv "no anchor buffer: relative extents unavailable";
  let anchors =
    match anchor_buf with
    | Some b -> List.sort_uniq compare (List.filter_map (fun a -> a.a_form) (stores_of b))
    | None -> []
  in
  let touched =
    List.sort_uniq compare
      (List.map (fun a -> a.a_buf) accs @ List.map (fun o -> o.o_buf) flows)
  in
  let bufs =
    List.map
      (fun b ->
        let reads = List.filter (fun a -> (not a.a_store) && a.a_buf = b) accs in
        let writes = stores_of b in
        let origin_forms =
          List.filter_map
            (fun o -> if o.o_buf = b then Some (o.o_form, o.o_exact) else None)
            flows
        in
        let r, rinex = side_of fenv strides ~anchors ~origin_forms reads in
        let w, winex = side_of fenv strides ~anchors ~origin_forms:[] writes in
        let exact =
          match (r.s_rel, w.s_rel) with
          | Some _, Some _ -> not (rinex || winex)
          | _ -> false
        in
        { fb_name = b; fb_read = r; fb_write = w; fb_exact = exact })
      touched
  in
  {
    fp_kernel = k.name;
    fp_anchor = anchor_buf;
    fp_strides = strides;
    fp_bufs = bufs;
    fp_notes = List.rev fenv.notes;
  }

(* -- Accessors --------------------------------------------------------- *)

let find t b = List.find_opt (fun fb -> fb.fb_name = b) t.fp_bufs
let read_rel t b = Option.bind (find t b) (fun fb -> fb.fb_read.s_rel)
let write_rel t b = Option.bind (find t b) (fun fb -> fb.fb_write.s_rel)

let read_radius t b =
  Option.map
    (fun ext ->
      let a = ext.(Array.length ext - 1) in
      max (-a.ax_lo) a.ax_hi)
    (read_rel t b)

(* -- Printing ---------------------------------------------------------- *)

let pp_axis ppf a = Fmt.pf ppf "[%d,%d]" a.ax_lo a.ax_hi

let pp_side ppf s =
  if s.s_sites = 0 then Fmt.string ppf "-"
  else
    match s.s_rel with
    | Some ext ->
        Array.iter (pp_axis ppf) ext;
        if s.s_indirect then Fmt.string ppf " +indirect"
    | None -> Fmt.pf ppf "%a%s" pp_itv s.s_lin (if s.s_indirect then " indirect" else "")

let pp ppf t =
  Fmt.pf ppf "@[<v>%s (anchor %s)"
    t.fp_kernel
    (Option.value ~default:"-" t.fp_anchor);
  List.iter
    (fun fb ->
      Fmt.pf ppf "@,  %-8s R %a  W %a%s" fb.fb_name pp_side fb.fb_read pp_side fb.fb_write
        (if fb.fb_exact then "" else " (approx)"))
    t.fp_bufs;
  List.iter (fun n -> Fmt.pf ppf "@,  note: %s" n) t.fp_notes;
  Fmt.pf ppf "@]"
