(* Interval / affine abstract domain shared by Check and Footprint. *)

(* -- Intervals ------------------------------------------------------- *)

type itv = { lo : int option; hi : int option }

let top_itv = { lo = None; hi = None }
let point n = { lo = Some n; hi = Some n }
let bool_itv = { lo = Some 0; hi = Some 1 }

let map2_opt f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

let itv_add a b = { lo = map2_opt ( + ) a.lo b.lo; hi = map2_opt ( + ) a.hi b.hi }
let itv_neg a = { lo = Option.map (fun h -> -h) a.hi; hi = Option.map (fun l -> -l) a.lo }
let itv_sub a b = itv_add a (itv_neg b)

let itv_mul a b =
  match (a.lo, a.hi, b.lo, b.hi) with
  | Some al, Some ah, Some bl, Some bh ->
      let ps = [ al * bl; al * bh; ah * bl; ah * bh ] in
      { lo = Some (List.fold_left min max_int ps); hi = Some (List.fold_left max min_int ps) }
  | _ -> top_itv

(* Truncating division by a positive constant, non-negative operand. *)
let itv_div_pos a c =
  match a.lo with
  | Some l when l >= 0 -> { lo = Some (l / c); hi = Option.map (fun h -> h / c) a.hi }
  | _ -> top_itv

let itv_join a b =
  {
    lo = map2_opt min a.lo b.lo;
    hi = map2_opt max a.hi b.hi;
  }

let itv_within a ~lo ~hi =
  match (a.lo, a.hi) with Some l, Some h -> l >= lo && h <= hi | _ -> false

let pp_itv ppf a =
  let s = function Some n -> string_of_int n | None -> "?" in
  Fmt.pf ppf "[%s, %s]" (s a.lo) (s a.hi)

(* -- Affine forms ---------------------------------------------------- *)

type term =
  | Tgid of int
  | Tlid of int  (* get_local_id(d), grouped kernels only *)
  | Tgrp of int  (* get_group_id(d), grouped kernels only *)
  | Tloop of int  (* unique id per syntactic loop *)
  | Tparam of string  (* unknown but launch-uniform scalar parameter *)

(* [coeffs] sorted by term, all coefficients non-zero. *)
type aff = { base : int; coeffs : (term * int) list }

let aff_const n = { base = n; coeffs = [] }
let aff_of_term t = { base = 0; coeffs = [ (t, 1) ] }

let aff_add a b =
  let rec merge xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | (tx, cx) :: xs', (ty, cy) :: ys' ->
        if tx = ty then
          let c = cx + cy in
          if c = 0 then merge xs' ys' else (tx, c) :: merge xs' ys'
        else if compare tx ty < 0 then (tx, cx) :: merge xs' ys
        else (ty, cy) :: merge xs ys'
  in
  { base = a.base + b.base; coeffs = merge a.coeffs b.coeffs }

let aff_scale k a =
  if k = 0 then aff_const 0
  else { base = k * a.base; coeffs = List.map (fun (t, c) -> (t, k * c)) a.coeffs }

let aff_neg a = aff_scale (-1) a
let aff_sub a b = aff_add a (aff_neg b)

let aff_coeff t a = Option.value ~default:0 (List.assoc_opt t a.coeffs)
let aff_shift t k a = { a with base = a.base + (k * aff_coeff t a) }
let is_const a = a.coeffs = []

let pp_term ppf = function
  | Tgid d -> Fmt.pf ppf "gid%d" d
  | Tlid d -> Fmt.pf ppf "lid%d" d
  | Tgrp d -> Fmt.pf ppf "grp%d" d
  | Tloop id -> Fmt.pf ppf "loop%d" id
  | Tparam v -> Fmt.string ppf v

let pp_aff ppf a =
  Fmt.pf ppf "%d" a.base;
  List.iter (fun (t, c) -> Fmt.pf ppf " %s %d*%a" (if c < 0 then "-" else "+") (abs c) pp_term t) a.coeffs

(* -- Abstract values -------------------------------------------------- *)

type absval = {
  v_itv : itv;
  v_aff : aff option;
  v_tainted : bool;  (* depends on data loaded from memory *)
}

let top = { v_itv = top_itv; v_aff = None; v_tainted = false }
let taint v = { v with v_tainted = true }

let known n = { v_itv = point n; v_aff = Some (aff_const n); v_tainted = false }

let join a b =
  {
    v_itv = itv_join a.v_itv b.v_itv;
    v_aff = (match (a.v_aff, b.v_aff) with Some x, Some y when x = y -> Some x | _ -> None);
    v_tainted = a.v_tainted || b.v_tainted;
  }
