(** Emission of kernel ASTs as OpenCL C source.

    The printed source is the artifact the paper's compiler produces;
    [Real] resolves to [float] or [double] per the kernel's precision
    (with [f]-suffixed literals in single precision). *)

val ty_name : Cast.precision -> Cast.ty -> string
(** C type name of a scalar type under a precision. *)

val builtin_name : Cast.builtin -> string

val expr_to_string :
  ?precision:Cast.precision -> ?tyenv:(string -> Cast.ty option) -> Cast.expr -> string
(** Render one expression (default precision: double).  [tyenv] types
    free names so real-typed [Mod] prints as [fmod(a, b)] — C's [%] is
    integer-only; without an oracle unknown names default to int. *)

val kernel_tyenv : Cast.kernel -> string -> Cast.ty option
(** Name-typing oracle for a kernel: parameters plus every declaration
    in the body (used by {!kernel_to_string}; exposed for callers that
    print expressions of a known kernel). *)

val kernel_to_string : Cast.kernel -> string
(** Render a kernel as a self-contained [__kernel] function. *)
