(** Portable-C rendering of kernel ASTs for the native compiled backend.

    Renders a {!Cast.kernel} as a self-contained C99 translation unit
    exporting a single entry point ({!entry_symbol}) that runs the full
    NDRange.  The rendering is semantics-exact against the reference
    interpreter ([Vgpu.Exec]) and the closure JIT ([Vgpu.Jit]): IEEE
    double arithmetic, [int64_t] integers with truncating division,
    [fmod] for real [Mod], OCaml-faithful [Fmin]/[Fmax] helpers, and
    single-precision rounding on stores to global real buffers.
    [Vgpu.Native] compiles the source with the system C compiler and
    dispatches launches through it. *)

val entry_symbol : string
(** Name of the exported entry:
    [void racs_kernel_entry(double **fb, int64_t **ib,
                            const int64_t *isc, const double *fsc,
                            const int64_t *gsz)]
    — real buffers, int buffers, int scalars, real scalars (each indexed
    by the slots of {!bindings}), and the three NDRange sizes (missing
    dimensions padded with 1). *)

type binding =
  | Arg_fbuf of int  (** real buffer -> [fb[slot]] *)
  | Arg_ibuf of int  (** int buffer -> [ib[slot]] *)
  | Arg_iscalar of int  (** int scalar -> [isc[slot]] *)
  | Arg_rscalar of int  (** real scalar -> [fsc[slot]] *)

val bindings : Cast.kernel -> binding list
(** ABI slot of each parameter, in parameter order; slot indices count
    per category in order of appearance, mirroring the JIT's binding
    construction.  The launcher must apply the JIT's scalar coercions
    when marshalling arguments (real argument to int parameter
    truncates, int argument to real parameter widens). *)

val written_params : Cast.kernel -> string list
(** The global-buffer parameters the kernel stores to, in parameter
    order — the write set behind the qualifier emission of
    {!kernel_source}.  Proven by {!Footprint}'s abstract interpretation
    (whose write side counts every static store site, indirect scatters
    included), unioned with a syntactic walk over [Store] targets as a
    conservative floor: a buffer is reported read-only only when both
    analyses agree it is never written. *)

val kernel_source : ?noalias:bool -> Cast.kernel -> string
(** The complete translation unit.  Deterministic: equal kernels render
    to equal strings, so the source digest can key a binary cache.

    Buffer parameters outside {!written_params} are emitted [const].
    With [noalias] (the default) every buffer parameter is additionally
    qualified [restrict] — licensed only when no buffer in
    {!written_params} is bound to the same array as any other buffer
    parameter.  [Vgpu.Native.launch] checks exactly that per launch and
    re-renders with [~noalias:false] (a distinct cache entry) for the
    rare aliased launch, so the fast path keeps the qualifier without
    ever lying to the C compiler.
    @raise Failure on an unbound identifier (the kernel would not
    interpret or JIT either). *)
