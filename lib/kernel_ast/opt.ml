(* Kernel-AST optimizer pipeline.

   Runs after code generation and before JIT compilation / C emission.
   The closure-compiling JIT pays for every AST node on the hot path, so
   removing redundant nodes translates directly into wall-clock gains;
   on a real GPU the same rewrites reduce the work the driver compiler
   must rediscover per build.

   Pass order (see ARCHITECTURE.md):

     1. fold      — [Cast.simplify_kernel]: constant folding, algebraic
                    identities, bit-exact strength reduction.  Running it
                    first canonicalises expressions so structurally equal
                    computations actually compare equal for CSE.
     2. unroll    — full unrolling of constant-trip loops of at most
                    [unroll_limit] iterations (the FD-MM per-branch ODE
                    loops, trip count MB): removes the per-iteration
                    bound/step/update overhead and turns the loop index
                    into a literal, exposing more folding and CSE.  Body
                    locals are alpha-renamed per copy so the splice stays
                    a valid C block.
     3. cse       — per-block common-subexpression elimination: repeated
                    pure expressions (above all the linearised stencil
                    index arithmetic) are hoisted into fresh scalar
                    declarations before their first use.
     4. licm      — loop-invariant code motion: pure expressions whose
                    free variables are untouched by a [For] body move in
                    front of the loop (innermost loops first, so an
                    expression invariant at several depths migrates all
                    the way out).  CSE runs before LICM so that a
                    subexpression shared by several loop iterations is
                    already a single named computation when LICM looks
                    for invariants.
     5. fold      — again, to clean up constants exposed by the rewrites.
     6. dce       — dead-store/dead-declaration elimination to fixpoint:
                    locals that are never read disappear together with
                    their assignments.

   Purity rules that gate hoisting (CSE and LICM share them):
   - no [Load]: memory may be written between occurrences (and between
     a loop entry and a use), so loads never move;
   - no [Div]/[Mod] whose divisor is not a non-zero literal: hoisting
     evaluates the expression unconditionally, and a division that was
     guarded by an [If] (or by a zero-trip loop) must not start
     trapping;
   - every free variable must be in scope at the insertion point and
     never assigned inside the region the expression moves over.

   Every pass is semantics-preserving bit-for-bit; the test suite
   validates optimized kernels differentially against the unoptimized
   interpreter and JIT on random kernels and on the acoustics schemes. *)

open Cast

type report = {
  nodes_before : int;
  nodes_after : int;
  cse_fired : int;        (* expressions hoisted into CSE temporaries *)
  licm_hoisted : int;     (* expressions moved out of loops *)
  unrolled : int;         (* constant-trip loops fully unrolled *)
  strength_reduced : int; (* shift/mask ops standing in for div/mod *)
  dead_removed : int;     (* dead declarations and assignments deleted *)
}

let pp_report ppf r =
  Fmt.pf ppf "nodes %d->%d, cse %d, licm %d, unroll %d, strength %d, dce %d" r.nodes_before
    r.nodes_after r.cse_fired r.licm_hoisted r.unrolled r.strength_reduced r.dead_removed

module StrMap = Map.Make (String)
module StrSet = Set.Make (String)

(* -- Structural measures -------------------------------------------- *)

let rec expr_nodes = function
  | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _
  | Local_id _ | Local_size _ -> 1
  | Load (_, i) -> 1 + expr_nodes i
  | Unop (_, a) -> 1 + expr_nodes a
  | Binop (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | Ternary (c, a, b) -> 1 + expr_nodes c + expr_nodes a + expr_nodes b
  | Call (_, args) -> List.fold_left (fun n a -> n + expr_nodes a) 1 args

let rec stmt_nodes = function
  | Comment _ | Decl (_, _, None) | Decl_arr _ | Decl_local _ | Barrier -> 1
  | Decl (_, _, Some e) | Assign (_, e) -> 1 + expr_nodes e
  | Store (_, i, e) -> 1 + expr_nodes i + expr_nodes e
  | If (c, t, f) -> 1 + expr_nodes c + body_nodes t + body_nodes f
  | For l ->
      1 + expr_nodes l.init + expr_nodes l.bound + expr_nodes l.step + body_nodes l.body

and body_nodes b = List.fold_left (fun n s -> n + stmt_nodes s) 0 b

let kernel_nodes (k : kernel) =
  body_nodes k.body + List.fold_left (fun n e -> n + expr_nodes e) 0 k.global_size

(* -- Expression predicates ------------------------------------------ *)

let rec iter_sub f e =
  f e;
  match e with
  | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _
  | Local_id _ | Local_size _ -> ()
  | Load (_, i) -> iter_sub f i
  | Unop (_, a) -> iter_sub f a
  | Binop (_, a, b) ->
      iter_sub f a;
      iter_sub f b
  | Ternary (c, a, b) ->
      iter_sub f c;
      iter_sub f a;
      iter_sub f b
  | Call (_, args) -> List.iter (iter_sub f) args

let rec expr_vars acc = function
  | Var v -> StrSet.add v acc
  | Int_lit _ | Real_lit _ | Global_id _ | Global_size _ | Group_id _
  | Local_id _ | Local_size _ -> acc
  | Load (b, i) -> expr_vars (StrSet.add b acc) i
  | Unop (_, a) -> expr_vars acc a
  | Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Ternary (c, a, b) -> expr_vars (expr_vars (expr_vars acc c) a) b
  | Call (_, args) -> List.fold_left expr_vars acc args

(* Safe to evaluate earlier (and possibly unconditionally) than where it
   occurs: no loads, and no division that could start trapping. *)
let rec hoistable = function
  | Load _ -> false
  | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _
  | Local_id _ | Local_size _ -> true
  | Unop (_, a) -> hoistable a
  | Binop ((Div | Mod), a, b) ->
      hoistable a && hoistable b
      && (match b with Int_lit n -> n <> 0 | Real_lit r -> r <> 0. | _ -> false)
  | Binop (_, a, b) -> hoistable a && hoistable b
  | Ternary (c, a, b) -> hoistable c && hoistable a && hoistable b
  | Call (_, args) -> List.for_all hoistable args

(* Worth naming: a compound expression of at least three nodes.  Leaves
   and loads are never candidates. *)
let candidate = function
  | (Binop _ | Unop _ | Ternary _ | Call _) as e -> expr_nodes e >= 3 && hoistable e
  | _ -> false

(* Static type of a hoistable expression under [tenv] (declared scalars
   and parameters), mirroring the JIT's C promotion rules; [None] when a
   variable is out of scope. *)
let rec ty_of tenv = function
  | Int_lit _ | Global_id _ | Global_size _ | Group_id _ | Local_id _
  | Local_size _ -> Some Int
  | Real_lit _ -> Some Real
  | Var v -> StrMap.find_opt v tenv
  | Load _ -> None
  | Unop ((To_real | Round), _) -> Some Real
  | Unop ((To_int | Not), _) -> Some Int
  | Unop (Neg, a) -> ty_of tenv a
  | Call _ -> Some Real
  | Ternary (_, a, b) | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> (
      match (ty_of tenv a, ty_of tenv b) with
      | Some Int, Some Int -> Some Int
      | Some _, Some _ -> Some Real
      | _ -> None)
  | Binop (_, _, _) -> Some Int

(* -- Variable effects over statement regions ------------------------ *)

let rec stmt_mods acc = function
  | Assign (v, _) -> StrSet.add v acc
  | If (_, t, f) -> body_mods (body_mods acc t) f
  | For l -> StrSet.add l.var (body_mods acc l.body)
  | Decl _ | Decl_arr _ | Decl_local _ | Store _ | Barrier | Comment _ -> acc

and body_mods acc b = List.fold_left stmt_mods acc b

let rec stmt_decls acc = function
  | Decl (_, v, _) | Decl_arr (_, v, _) | Decl_local (_, v, _) -> StrSet.add v acc
  | If (_, t, f) -> body_decls (body_decls acc t) f
  | For l -> StrSet.add l.var (body_decls acc l.body)
  | Assign _ | Store _ | Barrier | Comment _ -> acc

and body_decls acc b = List.fold_left stmt_decls acc b

(* Names declared below the top level of [stmts] (inside branches or loop
   bodies): an expression mentioning one can never be hoisted to this
   level. *)
let inner_decl_names stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | If (_, t, f) -> body_decls (body_decls acc t) f
      | For l -> StrSet.add l.var (body_decls acc l.body)
      | _ -> acc)
    StrSet.empty stmts

(* -- Expression traversal / rewriting over statements --------------- *)

let iter_stmt_exprs fe s =
  let rec go s =
    match s with
    | Decl (_, _, Some e) | Assign (_, e) -> fe e
    | Decl (_, _, None) | Decl_arr _ | Decl_local _ | Barrier | Comment _ -> ()
    | Store (_, i, e) ->
        fe i;
        fe e
    | If (c, t, f) ->
        fe c;
        List.iter go t;
        List.iter go f
    | For l ->
        fe l.init;
        fe l.bound;
        fe l.step;
        List.iter go l.body
  in
  go s

module EMap = Map.Make (struct
  type t = Cast.expr

  let compare = Stdlib.compare
end)

(* Replace every occurrence of a mapped expression by its temporary.
   Outermost match wins, so overlapping candidates (an expression and
   one of its subexpressions) compose correctly. *)
let rec rewrite_expr map e =
  match EMap.find_opt e map with
  | Some v -> Var v
  | None -> rewrite_children map e

(* As [rewrite_expr] but never matching the root: used for a
   temporary's own initialiser. *)
and rewrite_children map e =
  match e with
  | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _
  | Local_id _ | Local_size _ -> e
  | Load (b, i) -> Load (b, rewrite_expr map i)
  | Unop (op, a) -> Unop (op, rewrite_expr map a)
  | Binop (op, a, b) -> Binop (op, rewrite_expr map a, rewrite_expr map b)
  | Ternary (c, a, b) ->
      Ternary (rewrite_expr map c, rewrite_expr map a, rewrite_expr map b)
  | Call (f, args) -> Call (f, List.map (rewrite_expr map) args)

let rec rewrite_stmt map s =
  match s with
  | Decl (t, v, e) -> Decl (t, v, Option.map (rewrite_expr map) e)
  | Decl_arr _ | Decl_local _ | Barrier | Comment _ -> s
  | Assign (v, e) -> Assign (v, rewrite_expr map e)
  | Store (b, i, e) -> Store (b, rewrite_expr map i, rewrite_expr map e)
  | If (c, t, f) ->
      If (rewrite_expr map c, List.map (rewrite_stmt map) t, List.map (rewrite_stmt map) f)
  | For l ->
      For
        {
          l with
          init = rewrite_expr map l.init;
          bound = rewrite_expr map l.bound;
          step = rewrite_expr map l.step;
          body = List.map (rewrite_stmt map) l.body;
        }

let rec expr_contains e s =
  e = s
  ||
  match e with
  | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _
  | Local_id _ | Local_size _ -> false
  | Load (_, i) -> expr_contains i s
  | Unop (_, a) -> expr_contains a s
  | Binop (_, a, b) -> expr_contains a s || expr_contains b s
  | Ternary (c, a, b) -> expr_contains c s || expr_contains a s || expr_contains b s
  | Call (_, args) -> List.exists (fun a -> expr_contains a s) args

let stmt_contains s e =
  let found = ref false in
  iter_stmt_exprs (fun top -> if (not !found) && expr_contains top e then found := true) s;
  !found

(* -- Fresh temporaries ---------------------------------------------- *)

type namer = { used : (string, unit) Hashtbl.t; mutable next : int }

let namer_of_kernel (k : kernel) =
  let used = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace used p.p_name ()) k.params;
  StrSet.iter (fun v -> Hashtbl.replace used v ()) (body_decls StrSet.empty k.body);
  { used; next = 0 }

let fresh namer prefix =
  let rec go () =
    let n = Printf.sprintf "%s%d" prefix namer.next in
    namer.next <- namer.next + 1;
    if Hashtbl.mem namer.used n then go ()
    else begin
      Hashtbl.add namer.used n ();
      n
    end
  in
  go ()

(* -- Constant-trip loop unrolling ----------------------------------- *)

let unroll_limit = 8

(* Unrolling multiplies the body: past this many spliced AST nodes the
   register pressure and interpretation cost of the flattened body
   outweigh the saved loop overhead, so the loop is kept.  The FD-MM
   per-branch ODE loops (small bodies, <= [unroll_limit] trips) stay
   well inside the budget; the gate exists for large-bodied loops where
   unrolling used to be a measurable regression. *)
let unroll_budget = 512

(* Copy a loop body for one unrolled iteration: substitute the loop
   variable by its literal value and alpha-rename every name the body
   declares, so the spliced copies stay a valid C block (and distinct
   JIT register slots). *)
let rec subst_expr ren sub e =
  match e with
  | Var v -> (
      match StrMap.find_opt v sub with
      | Some e' -> e'
      | None -> (
          match StrMap.find_opt v ren with Some v' -> Var v' | None -> e))
  | Load (b, i) ->
      let b = Option.value ~default:b (StrMap.find_opt b ren) in
      Load (b, subst_expr ren sub i)
  | Int_lit _ | Real_lit _ | Global_id _ | Global_size _ | Group_id _
  | Local_id _ | Local_size _ -> e
  | Unop (op, a) -> Unop (op, subst_expr ren sub a)
  | Binop (op, a, b) -> Binop (op, subst_expr ren sub a, subst_expr ren sub b)
  | Ternary (c, a, b) ->
      Ternary (subst_expr ren sub c, subst_expr ren sub a, subst_expr ren sub b)
  | Call (f, args) -> Call (f, List.map (subst_expr ren sub) args)

let rec subst_stmt ren sub s =
  let rn v = Option.value ~default:v (StrMap.find_opt v ren) in
  let se = subst_expr ren sub in
  match s with
  | Decl (t, v, e) -> Decl (t, rn v, Option.map se e)
  | Decl_arr (t, v, n) -> Decl_arr (t, rn v, n)
  | Decl_local (t, v, n) -> Decl_local (t, rn v, n)
  | Barrier -> s
  | Assign (v, e) -> Assign (rn v, se e)
  | Store (b, i, e) -> Store (rn b, se i, se e)
  | If (c, t, f) -> If (se c, List.map (subst_stmt ren sub) t, List.map (subst_stmt ren sub) f)
  | For l ->
      For
        {
          var = rn l.var;
          init = se l.init;
          bound = se l.bound;
          step = se l.step;
          body = List.map (subst_stmt ren sub) l.body;
        }
  | Comment _ -> s

(* Fully unroll loops with literal init/bound/step and at most
   [unroll_limit] iterations (the FD-MM per-branch ODE loops), innermost
   first.  Skipped when the body assigns or shadows the loop variable. *)
let unroll_kernel ?(budget = unroll_budget) namer (k : kernel) =
  let count = ref 0 in
  let rec un_body body = List.concat_map un_stmt body
  and un_stmt s =
    match s with
    | If (c, t, f) -> [ If (c, un_body t, un_body f) ]
    | For l -> (
        let l = { l with body = un_body l.body } in
        match (l.init, l.bound, l.step) with
        | Int_lit i0, Int_lit b, Int_lit st
          when st > 0
               && (not (contains_barrier l.body))
               && max 0 ((b - i0 + st - 1) / st) <= unroll_limit
               && max 0 ((b - i0 + st - 1) / st) * body_nodes l.body
                  <= budget
               && (not (StrSet.mem l.var (body_mods StrSet.empty l.body)))
               && not (StrSet.mem l.var (body_decls StrSet.empty l.body)) ->
            let trips = max 0 ((b - i0 + st - 1) / st) in
            incr count;
            let decls = body_decls StrSet.empty l.body in
            let copies = ref [] in
            for t = trips - 1 downto 0 do
              let ren =
                StrSet.fold
                  (fun n acc -> StrMap.add n (fresh namer (n ^ "_u")) acc)
                  decls StrMap.empty
              in
              let sub = StrMap.singleton l.var (Int_lit (i0 + (t * st))) in
              copies := List.map (subst_stmt ren sub) l.body @ !copies
            done;
            !copies
        | _ -> [ For l ])
    | _ -> [ s ]
  in
  let body = un_body k.body in
  ({ k with body }, !count)

(* -- Candidate selection -------------------------------------------- *)

(* Tally every compound subexpression in a region.  Selection is greedy,
   largest first: picking an expression discounts the occurrences of its
   subexpressions that the hoist will absorb, so a subexpression is only
   named separately when it still pays for itself. *)
let tally_region iter_exprs =
  let tbl : (expr, int) Hashtbl.t = Hashtbl.create 64 in
  iter_exprs
    (iter_sub (fun e ->
         match e with
         | Binop _ | Unop _ | Ternary _ | Call _ ->
             Hashtbl.replace tbl e (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e))
         | _ -> ()));
  tbl

let select_candidates tbl ~eligible ~min_count =
  let cands =
    Hashtbl.fold (fun e n acc -> if n >= min_count && eligible e then e :: acc else acc) tbl []
    |> List.sort (fun a b -> compare (expr_nodes b) (expr_nodes a))
  in
  let count e = Option.value ~default:0 (Hashtbl.find_opt tbl e) in
  List.filter
    (fun e ->
      let n = count e in
      if n < min_count then false
      else begin
        (* Absorb this expression's subexpressions: all but one copy
           disappears for a CSE (the surviving copy is the temporary's
           initialiser); every copy leaves the loop for LICM, but the
           initialiser keeps one, which the min_count=1 case treats the
           same way. *)
        let absorbed = n - 1 in
        iter_sub
          (fun s ->
            if s != e && Hashtbl.mem tbl s then
              Hashtbl.replace tbl s (max 0 (count s - absorbed)))
          e;
        true
      end)
    cands

(* -- Common-subexpression elimination ------------------------------- *)

(* One block at a time: expressions repeated across the block whose free
   variables are never written inside it (at any depth) are computed once
   into a temporary declared immediately before their first use, then
   the block's nested branch/loop bodies are processed recursively for
   repeats that are local to them. *)
let cse_kernel namer (k : kernel) =
  let fired = ref 0 in
  let rec cse_block tenv stmts =
    let blocked = StrSet.union (body_mods StrSet.empty stmts) (inner_decl_names stmts) in
    let tbl = tally_region (fun fe -> List.iter (iter_stmt_exprs fe) stmts) in
    let eligible e =
      candidate e
      && StrSet.for_all (fun v -> not (StrSet.mem v blocked)) (expr_vars StrSet.empty e)
    in
    let selected = select_candidates tbl ~eligible ~min_count:2 in
    (* Anchor each selected expression at the first top-level statement
       containing it, provided its variables are in scope there; the
       declared type is resolved against the scope at that point. *)
    let anchors = Hashtbl.create 8 (* stmt index -> (expr, ty) list *) in
    let anchored = ref [] in
    (let tenv = ref tenv in
     List.iteri
       (fun j s ->
         List.iter
           (fun e ->
             if
               (not (List.memq e !anchored))
               && stmt_contains s e
               && StrSet.for_all (fun v -> StrMap.mem v !tenv) (expr_vars StrSet.empty e)
             then
               match ty_of !tenv e with
               | None -> ()
               | Some ty ->
                   anchored := e :: !anchored;
                   Hashtbl.replace anchors j
                     ((e, ty) :: Option.value ~default:[] (Hashtbl.find_opt anchors j)))
           selected;
         match s with
         | Decl (t, v, _) | Decl_arr (t, v, _) | Decl_local (t, v, _) ->
             tenv := StrMap.add v t !tenv
         | _ -> ())
       stmts);
    (* Build the temp map (expr -> name) over every anchored expression,
       then emit declarations (smallest first, so a larger temporary can
       reference a smaller one) and rewrite the block. *)
    let map =
      List.fold_left (fun m e -> EMap.add e (fresh namer "_cse") m) EMap.empty !anchored
    in
    let stmts =
      List.concat
        (List.mapi
           (fun j s ->
             let decls =
               match Hashtbl.find_opt anchors j with
               | None -> []
               | Some es ->
                   List.sort (fun (a, _) (b, _) -> compare (expr_nodes a) (expr_nodes b)) es
                   |> List.map (fun (e, ty) ->
                          fired := !fired + 1;
                          Decl (ty, EMap.find e map, Some (rewrite_children map e)))
             in
             decls @ [ rewrite_stmt map s ])
           stmts)
    in
    (* Recurse into nested blocks with the scope as of each point. *)
    let rec walk tenv acc = function
      | [] -> List.rev acc
      | s :: rest ->
          let s', tenv' =
            match s with
            | Decl (t, v, _) -> (s, StrMap.add v t tenv)
            | Decl_arr (t, v, _) | Decl_local (t, v, _) -> (s, StrMap.add v t tenv)
            | If (c, t, f) -> (If (c, cse_block tenv t, cse_block tenv f), tenv)
            | For l ->
                (For { l with body = cse_block (StrMap.add l.var Int tenv) l.body }, tenv)
            | _ -> (s, tenv)
          in
          walk tenv' (s' :: acc) rest
    in
    walk tenv [] stmts
  in
  let tenv0 =
    List.fold_left (fun m p -> StrMap.add p.p_name p.p_ty m) StrMap.empty k.params
  in
  let body = cse_block tenv0 k.body in
  ({ k with body }, !fired)

(* -- Loop-invariant code motion ------------------------------------- *)

(* Innermost loops first; for each [For], pure expressions from the body
   (and the per-iteration bound/step) whose variables are neither the
   loop variable nor written/declared inside the body move into
   temporaries declared just before the loop. *)
let licm_kernel namer (k : kernel) =
  let hoisted = ref 0 in
  let rec licm_block tenv stmts =
    let rec walk tenv acc = function
      | [] -> List.rev acc
      | s :: rest ->
          let pre, s', tenv' =
            match s with
            | Decl (t, v, _) -> ([], s, StrMap.add v t tenv)
            | Decl_arr (t, v, _) | Decl_local (t, v, _) -> ([], s, StrMap.add v t tenv)
            | If (c, t, f) -> ([], If (c, licm_block tenv t, licm_block tenv f), tenv)
            | For l when contains_barrier l.body ->
                (* Barrier loops are lowered by the native backend as
                   shared "uniform" loops whose header must stay a
                   work-group-uniform expression; hoisting the bound into
                   a per-work-item temporary would break that, so barrier
                   loops are fences for invariant motion.  Their bodies
                   are still processed (inner barrier-free loops hoist
                   within the segment). *)
                ([], For { l with body = licm_block (StrMap.add l.var Int tenv) l.body }, tenv)
            | For l ->
                let body = licm_block (StrMap.add l.var Int tenv) l.body in
                let l = { l with body } in
                let blocked =
                  StrSet.add l.var
                    (StrSet.union (body_mods StrSet.empty body)
                       (body_decls StrSet.empty body))
                in
                let tbl =
                  tally_region (fun fe ->
                      fe l.bound;
                      fe l.step;
                      List.iter (iter_stmt_exprs fe) body)
                in
                let eligible e =
                  candidate e
                  && StrSet.for_all
                       (fun v -> (not (StrSet.mem v blocked)) && StrMap.mem v tenv)
                       (expr_vars StrSet.empty e)
                  && ty_of tenv e <> None
                in
                let selected = select_candidates tbl ~eligible ~min_count:1 in
                let map =
                  List.fold_left
                    (fun m e -> EMap.add e (fresh namer "_inv") m)
                    EMap.empty selected
                in
                let decls =
                  List.sort (fun a b -> compare (expr_nodes a) (expr_nodes b)) selected
                  |> List.map (fun e ->
                         hoisted := !hoisted + 1;
                         let t = match ty_of tenv e with Some t -> t | None -> Int in
                         Decl (t, EMap.find e map, Some (rewrite_children map e)))
                in
                ( decls,
                  For
                    {
                      l with
                      init = rewrite_expr map l.init;
                      bound = rewrite_expr map l.bound;
                      step = rewrite_expr map l.step;
                      body = List.map (rewrite_stmt map) l.body;
                    },
                  tenv )
            | _ -> ([], s, tenv)
          in
          walk tenv' ((s' :: List.rev pre) @ acc) rest
    in
    walk tenv [] stmts
  in
  let tenv0 =
    List.fold_left (fun m p -> StrMap.add p.p_name p.p_ty m) StrMap.empty k.params
  in
  let body = licm_block tenv0 k.body in
  ({ k with body }, !hoisted)

(* -- Dead-store / dead-declaration elimination ---------------------- *)

(* A local is dead when no expression reads it (as a scalar or as an
   array base).  Dead declarations disappear together with every
   assignment to them; iterate to a fixpoint since an initialiser can be
   the last reader of another local. *)
let dce_kernel (k : kernel) =
  let removed = ref 0 in
  let reads body =
    let acc = ref StrSet.empty in
    List.iter (iter_stmt_exprs (fun e -> acc := expr_vars !acc e)) body;
    (* Store bases are reads of the array binding. *)
    let rec note s =
      match s with
      | Store (b, _, _) -> acc := StrSet.add b !acc
      | If (_, t, f) ->
          List.iter note t;
          List.iter note f
      | For l -> List.iter note l.body
      | _ -> ()
    in
    List.iter note body;
    !acc
  in
  let rec sweep live body =
    List.filter_map
      (fun s ->
        match s with
        | Decl (_, v, _) | Decl_arr (_, v, _) | Decl_local (_, v, _) | Assign (v, _) ->
            if StrSet.mem v live then Some s
            else begin
              incr removed;
              None
            end
        | If (c, t, f) -> Some (If (c, sweep live t, sweep live f))
        | For l -> Some (For { l with body = sweep live l.body })
        | Store _ | Barrier | Comment _ -> Some s)
      body
  in
  let rec fix body =
    let live = reads body in
    let before = !removed in
    let body = sweep live body in
    if !removed = before then body else fix body
  in
  let body = fix k.body in
  ({ k with body }, !removed)

(* -- Pipeline ------------------------------------------------------- *)

let count_strength_reduced (k : kernel) =
  let n = ref 0 in
  let fe = iter_sub (function Binop ((Shr | BAnd), _, _) -> incr n | _ -> ()) in
  List.iter (iter_stmt_exprs fe) k.body;
  !n

let optimize ?unroll_budget:budget (k0 : kernel) : kernel * report =
  let nodes_before = kernel_nodes k0 in
  let k = Cast.simplify_kernel k0 in
  let namer = namer_of_kernel k in
  let k, unrolled = unroll_kernel ?budget namer k in
  (* re-fold: unrolling turns loop indices into literals ([0 * nB]...) *)
  let k = if unrolled > 0 then Cast.simplify_kernel k else k in
  let k, cse_fired = cse_kernel namer k in
  let k, licm_hoisted = licm_kernel namer k in
  let k = Cast.simplify_kernel k in
  let k, dead_removed = dce_kernel k in
  (* a no-op pipeline returns the input kernel *physically*, so callers
     keying caches on physical identity (JIT cache, ranged-launch
     variants) share entries between the raw and "optimized" kernel *)
  let k =
    if
      unrolled = 0 && cse_fired = 0 && licm_hoisted = 0 && dead_removed = 0
      && k = k0
    then k0
    else k
  in
  ( k,
    {
      nodes_before;
      nodes_after = kernel_nodes k;
      cse_fired;
      licm_hoisted;
      unrolled;
      strength_reduced = count_strength_reduced k;
      dead_removed;
    } )
