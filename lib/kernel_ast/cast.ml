(* C-like abstract syntax for GPU kernels.

   This is the target of the Lift code generator and the program
   representation executed by the virtual GPU.  It covers the subset of
   OpenCL C needed by FDTD room-acoustics kernels: scalar int/real
   arithmetic, global-memory buffers, private (register) arrays, sequential
   [for] loops, conditionals and NDRange work-item identifiers. *)

type ty =
  | Int
  | Real

(* A kernel is generated once per floating-point precision; [Real] stands
   for [float] or [double] depending on [kernel.precision]. *)
type precision =
  | Single
  | Double

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Shr   (* arithmetic shift right; produced by strength reduction only *)
  | BAnd  (* bitwise and; produced by strength reduction only *)

type unop =
  | Neg
  | Not
  | To_real (* int -> real conversion *)
  | To_int  (* real -> int truncation *)
  | Round   (* round to nearest float32, kept as real *)

(* Math builtins kept abstract so the interpreter, the JIT and the printer
   agree on the supported set. *)
type builtin =
  | Sqrt
  | Fabs
  | Exp
  | Log
  | Sin
  | Cos
  | Floor
  | Fmin
  | Fmax

type expr =
  | Int_lit of int
  | Real_lit of float
  | Var of string
  | Load of string * expr          (* name[idx]; global buffer, local or private array *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Ternary of expr * expr * expr  (* cond ? a : b *)
  | Call of builtin * expr list
  | Global_id of int               (* get_global_id(d) *)
  | Global_size of int             (* get_global_size(d) *)
  | Group_id of int                (* get_group_id(d) *)
  | Local_id of int                (* get_local_id(d) *)
  | Local_size of int              (* get_local_size(d) *)

type stmt =
  | Decl of ty * string * expr option
  | Decl_arr of ty * string * int         (* private array of static length *)
  | Decl_local of ty * string * int
      (* work-group local array of static length; must appear at the top
         level of the body, before any use.  Zeroed once per work-group. *)
  | Assign of string * expr
  | Store of string * expr * expr         (* name[idx] = value *)
  | If of expr * stmt list * stmt list
  | For of for_loop
  | Barrier
      (* work-group barrier (local memory fence); every work-item of a
         group must reach the same dynamic barrier instance *)
  | Comment of string

and for_loop = {
  var : string;
  init : expr;
  bound : expr;   (* loop while var < bound *)
  step : expr;
  body : stmt list;
}

type param_kind =
  | Global_buf   (* __global pointer *)
  | Scalar_param

type param = {
  p_name : string;
  p_ty : ty;
  p_kind : param_kind;
}

type kernel = {
  name : string;
  params : param list;
  body : stmt list;
  precision : precision;
  (* Global work size per dimension, as expressions over scalar params.
     Dimension list may be shorter than 3. *)
  global_size : expr list;
  (* Work-group size per dimension, as static ints (the paper hand-tunes
     these per kernel, so they are compile-time constants).  [[]] means
     the flat NDRange execution model: no groups, no local memory,
     barriers are no-ops, [Group_id d = Global_id d] and [Local_id d =
     0].  When non-empty, each launch dimension must be divisible by the
     corresponding entry (missing trailing dimensions default to 1). *)
  local_size : int list;
}

let int_lit n = Int_lit n
let real_lit r = Real_lit r
let var v = Var v
let load buf idx = Load (buf, idx)

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)

let for_ var ~from ~below ?(step = Int_lit 1) body =
  For { var; init = from; bound = below; step; body }

let param ?(kind = Global_buf) name ty = { p_name = name; p_ty = ty; p_kind = kind }

(* Work-group geometry helpers shared by the engines. *)

let grouped k = k.local_size <> []

(* Work-group size padded to 3 dimensions (1 for missing entries). *)
let local3 k =
  let l = [| 1; 1; 1 |] in
  List.iteri
    (fun d n ->
      if d > 2 then invalid_arg (Printf.sprintf "kernel %s: local_size has > 3 dims" k.name);
      if n < 1 then
        invalid_arg (Printf.sprintf "kernel %s: local_size dimension %d is %d" k.name d n);
      l.(d) <- n)
    k.local_size;
  l

(* Validate an NDRange against the kernel's work-group size and return
   the per-dimension group counts.  [global] is the padded 3-wide launch
   size. *)
let group_counts k ~(global : int array) =
  let l = local3 k in
  Array.mapi
    (fun d g ->
      if g mod l.(d) <> 0 then
        invalid_arg
          (Printf.sprintf
             "kernel %s: global size %d in dimension %d is not divisible by local size %d"
             k.name g d l.(d))
      else g / l.(d))
    global

(* Whether any statement in [body] is a [Barrier], at any depth.  The
   optimizer treats barrier-containing loops as fences (no unrolling, no
   invariant motion out of the loop header) and the native backend lowers
   them as shared "uniform" loops. *)
let rec contains_barrier body =
  List.exists
    (function
      | Barrier -> true
      | If (_, t, f) -> contains_barrier t || contains_barrier f
      | For l -> contains_barrier l.body
      | Decl _ | Decl_arr _ | Decl_local _ | Assign _ | Store _ | Comment _ -> false)
    body

(* Syntactic proof that an expression is a non-negative integer.  Only
   shapes whose leaves are non-negative int literals, NDRange ids/sizes or
   comparison results qualify, so a [true] answer also implies the
   expression is int-typed.  This gates the [Div]/[Mod] by power-of-two
   strength reductions: C truncating division disagrees with shifts and
   masks on negative operands. *)
let rec is_nonneg e =
  match e with
  | Int_lit n -> n >= 0
  | Global_id _ | Global_size _ | Group_id _ | Local_id _ | Local_size _ -> true
  | Unop (Not, _) -> true
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> true
  | Binop ((Add | Mul | Div | Mod), a, b) -> is_nonneg a && is_nonneg b
  | Binop (Shr, a, Int_lit k) -> is_nonneg a && k >= 0
  | Binop (BAnd, a, b) -> is_nonneg a || is_nonneg b
  | Ternary (_, a, b) -> is_nonneg a && is_nonneg b
  | _ -> false

let is_pow2_int y = y > 1 && y land (y - 1) = 0

let ilog2 y =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 y

(* [c] is an exact (finite, non-zero) power of two whose reciprocal is
   also finite; dividing by such a constant and multiplying by its
   reciprocal are both correctly rounded scalings by the same exact
   value, hence bit-identical. *)
let is_pow2_real c =
  c <> 0. && Float.is_finite c
  && Float.abs (fst (Float.frexp c)) = 0.5
  && Float.is_finite (1. /. c)

(* Constant folding and light algebraic simplification.  The code
   generator produces index expressions with many [x + 0] / [x * 1]
   patterns; folding them keeps the emitted OpenCL readable and speeds up
   the interpreter.  This is the algebraic-rule layer of the optimizer
   pipeline ([Opt]); strength reductions that change the operator
   ([Div]/[Mod] by powers of two, real division by an exact power of two)
   live here too, gated so they stay bit-for-bit exact. *)
let rec simplify e =
  match e with
  | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _ | Local_id _
  | Local_size _ ->
      e
  | Load (b, i) -> Load (b, simplify i)
  | Unop (op, a) -> (
      let a = simplify a in
      match (op, a) with
      | Neg, Int_lit n -> Int_lit (-n)
      | Neg, Real_lit r -> Real_lit (-.r)
      | To_real, Int_lit n -> Real_lit (float_of_int n)
      | To_int, Real_lit r -> Int_lit (int_of_float r)
      | Round, Real_lit r -> Real_lit (Int32.float_of_bits (Int32.bits_of_float r))
      | Not, Int_lit n -> Int_lit (if n = 0 then 1 else 0)
      | _ -> Unop (op, a))
  | Ternary (c, a, b) -> (
      let c = simplify c in
      match c with
      | Int_lit 0 -> simplify b
      | Int_lit _ -> simplify a
      | _ -> Ternary (c, simplify a, simplify b))
  | Call (f, args) -> Call (f, List.map simplify args)
  | Binop (op, a, b) -> (
      let a = simplify a and b = simplify b in
      match (op, a, b) with
      | Add, Int_lit x, Int_lit y -> Int_lit (x + y)
      | Sub, Int_lit x, Int_lit y -> Int_lit (x - y)
      | Mul, Int_lit x, Int_lit y -> Int_lit (x * y)
      | Div, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x / y)
      | Mod, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x mod y)
      | Add, Real_lit x, Real_lit y -> Real_lit (x +. y)
      | Sub, Real_lit x, Real_lit y -> Real_lit (x -. y)
      | Mul, Real_lit x, Real_lit y -> Real_lit (x *. y)
      | Shr, Int_lit x, Int_lit y when y >= 0 && y < 62 -> Int_lit (x asr y)
      | BAnd, Int_lit x, Int_lit y -> Int_lit (x land y)
      | Add, Int_lit 0, e | Add, e, Int_lit 0 -> e
      | Sub, e, Int_lit 0 -> e
      | Mul, Int_lit 1, e | Mul, e, Int_lit 1 -> e
      | Mul, Int_lit 0, _ | Mul, _, Int_lit 0 -> Int_lit 0
      | Div, e, Int_lit 1 -> e
      | Add, Binop (Add, e, Int_lit x), Int_lit y -> simplify (Binop (Add, e, Int_lit (x + y)))
      (* Literal-chain reassociation over mixed +/- , int only
         (reassociating real sums is not bit-exact); [is_nonneg] doubles
         as the int-typed proof. *)
      | Sub, Binop (Add, e, Int_lit x), Int_lit y when is_nonneg e ->
          simplify (Binop (Add, e, Int_lit (x - y)))
      | Add, Binop (Sub, e, Int_lit x), Int_lit y when is_nonneg e ->
          simplify (Binop (Add, e, Int_lit (y - x)))
      | Sub, Binop (Sub, e, Int_lit x), Int_lit y when is_nonneg e ->
          simplify (Binop (Sub, e, Int_lit (x + y)))
      (* Strength reduction; the [is_nonneg] proof keeps truncating
         division/modulo semantics intact (see above) and implies the
         operand is int-typed. *)
      | Div, e, Int_lit y when is_pow2_int y && is_nonneg e ->
          Binop (Shr, e, Int_lit (ilog2 y))
      | Mod, e, Int_lit y when is_pow2_int y && is_nonneg e ->
          Binop (BAnd, e, Int_lit (y - 1))
      | Div, e, Real_lit c when is_pow2_real c && c <> 1. ->
          Binop (Mul, e, Real_lit (1. /. c))
      | Lt, Int_lit x, Int_lit y -> Int_lit (if x < y then 1 else 0)
      | Le, Int_lit x, Int_lit y -> Int_lit (if x <= y then 1 else 0)
      | Gt, Int_lit x, Int_lit y -> Int_lit (if x > y then 1 else 0)
      | Ge, Int_lit x, Int_lit y -> Int_lit (if x >= y then 1 else 0)
      | Eq, Int_lit x, Int_lit y -> Int_lit (if x = y then 1 else 0)
      | Ne, Int_lit x, Int_lit y -> Int_lit (if x <> y then 1 else 0)
      | And, Int_lit 0, _ | And, _, Int_lit 0 -> Int_lit 0
      | And, Int_lit _, e | And, e, Int_lit _ -> e
      | Or, Int_lit 0, e | Or, e, Int_lit 0 -> e
      | _ -> Binop (op, a, b))

let rec simplify_stmt s =
  match s with
  | Decl (t, v, e) -> Decl (t, v, Option.map simplify e)
  | Decl_arr _ | Decl_local _ | Barrier | Comment _ -> s
  | Assign (v, e) -> Assign (v, simplify e)
  | Store (b, i, e) -> Store (b, simplify i, simplify e)
  | If (c, t, f) -> (
      match simplify c with
      | Int_lit 0 -> If (Int_lit 0, [], List.map simplify_stmt f)
      | c -> If (c, List.map simplify_stmt t, List.map simplify_stmt f))
  | For l ->
      For
        {
          l with
          init = simplify l.init;
          bound = simplify l.bound;
          step = simplify l.step;
          body = List.map simplify_stmt l.body;
        }

let simplify_kernel k =
  {
    k with
    body = List.map simplify_stmt k.body;
    global_size = List.map simplify k.global_size;
  }

(* Ranged-launch variant of a 1-D kernel: append a scalar int parameter
   (default ["goff"]) and rewrite every [get_global_id(0)] to
   [get_global_id(0) + goff], so launching [count] work-items with
   [goff = lo] covers exactly the flat index range [lo, lo + count).
   This is how the sharded backend cuts a volume kernel into an interior
   launch plus thin frontier launches without touching its body logic.
   The variant must be launched with an explicit NDRange ([count]); its
   [global_size] field is a placeholder variable that no scalar
   resolves, so accidentally launching it full-range fails loudly. *)
let offset_global_id ?(param_name = "goff") (k : kernel) =
  if List.exists (fun p -> p.p_name = param_name) k.params then
    invalid_arg
      (Printf.sprintf "Cast.offset_global_id: kernel %s already has a parameter %s" k.name
         param_name);
  let rec rw e =
    match e with
    | Global_id 0 -> Binop (Add, Global_id 0, Var param_name)
    | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _ | Local_id _
    | Local_size _ ->
        e
    | Load (b, i) -> Load (b, rw i)
    | Binop (op, a, b) -> Binop (op, rw a, rw b)
    | Unop (op, a) -> Unop (op, rw a)
    | Ternary (c, a, b) -> Ternary (rw c, rw a, rw b)
    | Call (f, args) -> Call (f, List.map rw args)
  in
  let rec rws s =
    match s with
    | Decl (t, v, e) -> Decl (t, v, Option.map rw e)
    | Decl_arr _ | Decl_local _ | Barrier | Comment _ -> s
    | Assign (v, e) -> Assign (v, rw e)
    | Store (b, i, e) -> Store (b, rw i, rw e)
    | If (c, t, f) -> If (rw c, List.map rws t, List.map rws f)
    | For l ->
        For
          {
            l with
            init = rw l.init;
            bound = rw l.bound;
            step = rw l.step;
            body = List.map rws l.body;
          }
  in
  {
    k with
    params = k.params @ [ param ~kind:Scalar_param param_name Int ];
    body = List.map rws k.body;
    global_size = [ Var (param_name ^ "_range") ];
  }
