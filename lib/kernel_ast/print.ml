(* Emission of kernel ASTs as OpenCL C source.

   The printed source is the artifact the paper's compiler produces; it is
   kept human-readable (folded constants, one statement per line) so it can
   be diffed against the paper's listings. *)

open Cast

let ty_name precision = function
  | Int -> "int"
  | Real -> ( match precision with Single -> "float" | Double -> "double")

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%" (* int-typed only: real Mod prints as fmod(a, b), see expr_prec *)
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"
  | Shr -> ">>"
  | BAnd -> "&"

let builtin_name = function
  | Sqrt -> "sqrt"
  | Fabs -> "fabs"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Floor -> "floor"
  | Fmin -> "fmin"
  | Fmax -> "fmax"

(* Operator precedence, loosely following C: higher binds tighter. *)
let binop_prec = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | BAnd -> 5
  | And -> 4
  | Or -> 3

(* Static type of an expression under a name-typing oracle, following C
   promotion rules like the engines ([Jit.type_of]).  Names the oracle
   does not know default to [Int] — the pre-existing behaviour of the
   untyped printer; [kernel_to_string] supplies a complete oracle built
   from the kernel's parameters and declarations, so kernel-level
   printing is always fully typed. *)
let rec expr_ty tyenv e =
  match e with
  | Int_lit _ | Global_id _ | Global_size _ | Group_id _ | Local_id _ | Local_size _ -> Int
  | Real_lit _ -> Real
  | Var v -> Option.value (tyenv v) ~default:Int
  | Load (b, _) -> Option.value (tyenv b) ~default:Int
  | Unop ((To_real | Round), _) -> Real
  | Unop ((To_int | Not), _) -> Int
  | Unop (Neg, a) -> expr_ty tyenv a
  | Ternary (_, a, b) -> (
      match (expr_ty tyenv a, expr_ty tyenv b) with Int, Int -> Int | _ -> Real)
  | Call (_, _) -> Real
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> (
      match (expr_ty tyenv a, expr_ty tyenv b) with Int, Int -> Int | _ -> Real)
  | Binop (_, _, _) -> Int

let no_tyenv : string -> ty option = fun _ -> None

let rec expr_prec ?(precision = Double) ?(tyenv = no_tyenv) ~prec buf e =
  let expr_prec ~prec buf e = expr_prec ~precision ~tyenv ~prec buf e in
  let open Buffer in
  match e with
  | Int_lit n ->
      if n < 0 then add_string buf (Printf.sprintf "(%d)" n)
      else add_string buf (string_of_int n)
  | Real_lit r ->
      let s = Printf.sprintf "%.17g" r in
      let s = if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s else s ^ ".0" in
      let s = match precision with Single -> s ^ "f" | Double -> s in
      add_string buf s
  | Var v -> add_string buf v
  | Load (b, i) ->
      add_string buf b;
      add_char buf '[';
      expr_prec ~prec:0 buf i;
      add_char buf ']'
  | Global_id d -> add_string buf (Printf.sprintf "get_global_id(%d)" d)
  | Global_size d -> add_string buf (Printf.sprintf "get_global_size(%d)" d)
  | Group_id d -> add_string buf (Printf.sprintf "get_group_id(%d)" d)
  | Local_id d -> add_string buf (Printf.sprintf "get_local_id(%d)" d)
  | Local_size d -> add_string buf (Printf.sprintf "get_local_size(%d)" d)
  | Call (f, args) ->
      add_string buf (builtin_name f);
      add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then add_string buf ", ";
          expr_prec ~prec:0 buf a)
        args;
      add_char buf ')'
  | Unop (op, a) -> (
      match op with
      | Neg ->
          add_string buf "(-";
          expr_prec ~prec:11 buf a;
          add_char buf ')'
      | Not ->
          add_string buf "(!";
          expr_prec ~prec:11 buf a;
          add_char buf ')'
      | To_real ->
          add_string buf (Printf.sprintf "(%s)(" (ty_name precision Real));
          expr_prec ~prec:0 buf a;
          add_char buf ')'
      | To_int ->
          add_string buf "(int)(";
          expr_prec ~prec:0 buf a;
          add_char buf ')'
      | Round ->
          (* the store-rounding made explicit; a float-typed no-op under
             Single, a genuine narrowing round-trip under Double *)
          add_string buf "(float)(";
          expr_prec ~prec:0 buf a;
          add_char buf ')')
  | Ternary (c, a, b) ->
      if prec > 1 then add_char buf '(';
      expr_prec ~prec:2 buf c;
      add_string buf " ? ";
      expr_prec ~prec:2 buf a;
      add_string buf " : ";
      expr_prec ~prec:1 buf b;
      if prec > 1 then add_char buf ')'
  | Binop (Mod, a, b) when expr_ty tyenv e = Real ->
      (* C's % is integer-only; real modulo is the fmod builtin (which
         the interpreter and JIT compute as Float.rem = fmod) *)
      add_string buf "fmod(";
      expr_prec ~prec:0 buf a;
      add_string buf ", ";
      expr_prec ~prec:0 buf b;
      add_char buf ')'
  | Binop (op, a, b) ->
      let p = binop_prec op in
      if prec > p then add_char buf '(';
      expr_prec ~prec:p buf a;
      add_char buf ' ';
      add_string buf (binop_symbol op);
      add_char buf ' ';
      expr_prec ~prec:(p + 1) buf b;
      if prec > p then add_char buf ')'

let expr_to_string ?(precision = Double) ?(tyenv = no_tyenv) e =
  let buf = Buffer.create 64 in
  expr_prec ~precision ~tyenv ~prec:0 buf e;
  Buffer.contents buf

(* Name-typing oracle for a whole kernel: parameters plus every
   declaration in the body (scalars, private arrays, loop variables). *)
let kernel_tyenv (k : kernel) : string -> ty option =
  let tbl = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace tbl p.p_name p.p_ty) k.params;
  let rec scan = function
    | Decl (t, v, _) | Decl_arr (t, v, _) | Decl_local (t, v, _) -> Hashtbl.replace tbl v t
    | If (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | For l ->
        Hashtbl.replace tbl l.var Int;
        List.iter scan l.body
    | Assign _ | Store _ | Barrier | Comment _ -> ()
  in
  List.iter scan k.body;
  Hashtbl.find_opt tbl

let rec stmt ~precision ~tyenv ~indent buf s =
  let expr_to_string e = expr_to_string ~precision ~tyenv e in
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match s with
  | Comment c -> line "/* %s */" c
  | Decl (t, v, None) -> line "%s %s;" (ty_name precision t) v
  | Decl (t, v, Some e) -> line "%s %s = %s;" (ty_name precision t) v (expr_to_string e)
  | Decl_arr (t, v, n) -> line "%s %s[%d];" (ty_name precision t) v n
  | Decl_local (t, v, n) -> line "__local %s %s[%d];" (ty_name precision t) v n
  | Barrier -> line "barrier(CLK_LOCAL_MEM_FENCE);"
  | Assign (v, e) -> line "%s = %s;" v (expr_to_string e)
  | Store (b, i, e) -> line "%s[%s] = %s;" b (expr_to_string i) (expr_to_string e)
  | If (c, t, []) ->
      line "if (%s) {" (expr_to_string c);
      List.iter (stmt ~precision ~tyenv ~indent:(indent + 2) buf) t;
      line "}"
  | If (c, t, f) ->
      line "if (%s) {" (expr_to_string c);
      List.iter (stmt ~precision ~tyenv ~indent:(indent + 2) buf) t;
      line "} else {";
      List.iter (stmt ~precision ~tyenv ~indent:(indent + 2) buf) f;
      line "}"
  | For l ->
      line "for (int %s = %s; %s < %s; %s = %s + %s) {" l.var (expr_to_string l.init)
        l.var (expr_to_string l.bound) l.var l.var (expr_to_string l.step);
      List.iter (stmt ~precision ~tyenv ~indent:(indent + 2) buf) l.body;
      line "}"

let kernel_param ~precision p =
  match p.p_kind with
  | Global_buf -> Printf.sprintf "__global %s* restrict %s" (ty_name precision p.p_ty) p.p_name
  | Scalar_param -> Printf.sprintf "const %s %s" (ty_name precision p.p_ty) p.p_name

(* Render a kernel as a self-contained OpenCL C function.  [Real] is
   resolved per [k.precision] so the same AST prints as a float or double
   kernel. *)
let kernel_to_string (k : kernel) =
  let buf = Buffer.create 1024 in
  let tyenv = kernel_tyenv k in
  let params = List.map (kernel_param ~precision:k.precision) k.params in
  let attr =
    if grouped k then
      let l = local3 k in
      Printf.sprintf "__attribute__((reqd_work_group_size(%d, %d, %d)))\n" l.(0) l.(1) l.(2)
    else ""
  in
  Buffer.add_string buf
    (Printf.sprintf "%s__kernel void %s(%s) {\n" attr k.name (String.concat ", " params));
  List.iter (stmt ~precision:k.precision ~tyenv ~indent:2 buf) k.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
