(* Rewrite-space exploration.

   Lift's optimisation story (paper §III): a single high-level program is
   rewritten into many semantically equal low-level variants, and the
   best one is selected for the target hardware.  This module provides
   the search: bounded breadth-first closure of the rewrite rules over a
   program, plus ranking of the compiled variants with the virtual GPU's
   performance model.

   Semantic preservation of every rule is property-tested separately, so
   every variant returned here computes the same function. *)

type variant = {
  v_program : Ast.lam;
  v_trace : string list;  (* rule names applied, outermost first *)
}

(* Structural key for deduplication.  Substitution freshens parameter
   ids, so raw structural equality would distinguish alpha-equivalent
   variants; stripping the uniquifying digit suffixes from the printed
   form gives a cheap alpha-insensitive key.  Whitespace goes too: the
   pretty-printer's line breaks depend on identifier widths, so two
   alpha-equivalent programs can otherwise differ in indentation alone
   (the key must be stable across gensym state — {!Harness.Autotune}
   hashes it into its plan-cache digest). *)
let key (f : Ast.lam) : string =
  let b = Buffer.create 256 in
  String.iter
    (fun c ->
      if not (('0' <= c && c <= '9') || c = ' ' || c = '\n' || c = '\t') then
        Buffer.add_char b c)
    (Ast.to_string f.Ast.l_body);
  Buffer.contents b

(* All variants reachable by applying each rule (everywhere, once) up to
   [depth] times, including the original.  The frontier is deduplicated
   by structural key. *)
let variants ?(rules = Rewrite.default_rules) ?(depth = 4) (f : Ast.lam) : variant list =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let add v =
    let k = key v.v_program in
    if Hashtbl.mem seen k then false
    else begin
      Hashtbl.replace seen k ();
      out := v :: !out;
      true
    end
  in
  let rec bfs frontier d =
    if d = 0 || frontier = [] then ()
    else begin
      let next =
        List.concat_map
          (fun v ->
            List.filter_map
              (fun (r : Rewrite.rule) ->
                let body', fired = Rewrite.apply_everywhere r v.v_program.Ast.l_body in
                if not fired then None
                else begin
                  let v' =
                    {
                      v_program = { v.v_program with Ast.l_body = body' };
                      v_trace = v.v_trace @ [ r.Rewrite.r_name ];
                    }
                  in
                  if add v' then Some v' else None
                end)
              rules)
          frontier
      in
      bfs next (d - 1)
    end
  in
  let root = { v_program = f; v_trace = [] } in
  ignore (add root);
  bfs [ root ] depth;
  List.rev !out

type ranked = {
  r_variant : variant;
  r_kernel : Kernel_ast.Cast.kernel;
  r_time_s : float;
}

(* Compile every variant and rank by predicted runtime on [device] under
   [workload].  Variants that fail to compile are dropped. *)
let rank ?(precision = Kernel_ast.Cast.Double) ~device ~workload
    (vs : variant list) : ranked list =
  let ranked =
    List.filter_map
      (fun v ->
        match Codegen.compile_kernel ~name:"variant" ~precision v.v_program with
        | c ->
            let t = Vgpu.Perf_model.predict device c.Codegen.kernel workload in
            Some { r_variant = v; r_kernel = c.Codegen.kernel; r_time_s = t }
        | exception _ -> None)
      vs
  in
  (* Tie-break equal predicted times by integer-op count (index
     arithmetic the roofline does not price) and then by program size,
     so the cleanest variant of a tie wins. *)
  let iops r = (Kernel_ast.Analysis.kernel_counts r.r_kernel).Kernel_ast.Analysis.iops in
  List.sort
    (fun a b ->
      match compare a.r_time_s b.r_time_s with
      | 0 -> (
          match compare (iops a) (iops b) with
          | 0 -> compare (Ast.size a.r_variant.v_program.Ast.l_body)
                   (Ast.size b.r_variant.v_program.Ast.l_body)
          | c -> c)
      | c -> c)
    ranked

(* Explore + lower + rank, keeping the [k] best variants: the model-led
   frontier the measured autotuner re-ranks.  Each survivor carries its
   rule trace, so the winning variant can be persisted by name sequence
   and reconstructed later with [replay]. *)
let frontier ?rules ?depth ?(k = 3) ?precision ~device ~workload (f : Ast.lam) :
    ranked list =
  let vs = variants ?rules ?depth f in
  let lowered =
    List.map (fun v -> { v with v_program = Rewrite.lower_outer_map_to_glb v.v_program }) vs
  in
  let ranked = rank ?precision ~device ~workload lowered in
  List.filteri (fun i _ -> i < k) ranked

(* One-call search: explore, lower the outermost map of every variant to
   the GPU, compile and pick the fastest. *)
let best ?rules ?depth ?precision ~device ~workload (f : Ast.lam) : ranked option =
  match frontier ?rules ?depth ~k:1 ?precision ~device ~workload f with
  | [] -> None
  | best :: _ -> Some best

(* Reconstruct a variant from its persisted rule trace.  Exact replay:
   [variants] applies each rule with [Rewrite.apply_everywhere] — a
   deterministic whole-program bottom-up sweep — so the name sequence
   alone reproduces the same program.  Traces recorded by [frontier] /
   [best] are of the *pre-lowering* program: lower the result before
   compiling, as those functions do. *)
let replay ?(rules = Rewrite.default_rules) ~(trace : string list) (f : Ast.lam) :
    Ast.lam =
  List.fold_left
    (fun acc name ->
      match List.find_opt (fun (r : Rewrite.rule) -> r.Rewrite.r_name = name) rules with
      | None -> invalid_arg (Printf.sprintf "Explore.replay: unknown rule %S" name)
      | Some r ->
          let body', _ = Rewrite.apply_everywhere r acc.Ast.l_body in
          { acc with Ast.l_body = body' })
    f trace
