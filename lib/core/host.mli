(** Host-side Lift: the primitives of paper §IV-A (Table I) and their
    code generation.

    A host program orchestrates data movement and kernel launches
    (OclKernel / ToGPU / ToHost / WriteTo).  It compiles to two
    artifacts: an executable {!Vgpu.Runtime.plan} (the simulated OpenCL
    host run) and OpenCL-style host C source for inspection. *)

exception Host_error of string

type hexpr =
  | H_input of Ast.param  (** a host-resident input buffer, bound by name *)
  | H_int of int
  | H_real of float
  | H_to_gpu of hexpr
  | H_to_host of hexpr
  | H_kernel of { k_name : string; f : Ast.lam; args : hexpr list }
  | H_write_to of hexpr * hexpr  (** target, value *)
  | H_let of Ast.param * hexpr * hexpr
      (** share a result (e.g. a kernel output) without re-launching;
          the bound param is referenced with {!constructor:H_input} *)
  | H_tuple of hexpr list
  | H_copy of { src : hexpr; src_off : int; dst : hexpr; dst_off : int; elems : int }
      (** device-to-device sub-buffer copy ([clEnqueueCopyBuffer]): the
          ghost-slab transfer of the sharded backend *)
  | H_event of string * hexpr
      (** the last enqueue compiled from the inner expression signals
          the named [cl_event] *)
  | H_wait of string list * hexpr
      (** the first enqueue compiled from the inner expression carries
          the named events as its wait list — with [H_event], the
          host-IR face of the overlapped schedule's explicit
          synchronisation (out-of-order queues need the event edges the
          in-order queue provided implicitly) *)

val input : Ast.param -> hexpr
val to_gpu : hexpr -> hexpr
val to_host : hexpr -> hexpr
val ocl_kernel : name:string -> Ast.lam -> hexpr list -> hexpr
val write_to : hexpr -> hexpr -> hexpr

val copy : src:hexpr -> src_off:int -> dst:hexpr -> dst_off:int -> elems:int -> hexpr

val event : string -> hexpr -> hexpr
(** [event name e]: the last operation enqueued while compiling [e]
    signals [cl_event ev_<name>].  A name may be signaled once per
    program. *)

val wait : string list -> hexpr -> hexpr
(** [wait names e]: the first operation enqueued while compiling [e]
    waits on all the named events. *)

val halo_exchange : plane:int -> lo:hexpr -> lo_planes:int -> hi:hexpr -> hexpr
(** One halo exchange across a Z cut between the [lo] slab (owning the
    planes below the cut; [lo_planes] local planes including its two
    ghost planes) and the [hi] slab above it: lo's top owned plane
    refreshes hi's bottom ghost plane, hi's bottom owned plane refreshes
    lo's top ghost plane.  [plane] is the XY plane size in elements. *)

(** What a host expression denotes after compilation. *)
type denot =
  | D_buf of string * Ty.t
  | D_int of int
  | D_real of float
  | D_tuple of denot list

type compiled_host = {
  plan : Vgpu.Runtime.plan;
  kernels : Codegen.compiled list;
  source : string;  (** OpenCL-style host pseudo-C *)
  result : denot;
  buffer_elems : (string * int) list;
      (** extent of every buffer the plan touches, as resolved at
          compile time — inputs, kernel outputs and temporaries;
          consumed by {!Emit_c.host_program} to size host allocations
          and by {!Lint} *)
  op_events : (int * string) list;
      (** plan index -> event the op signals ({!event} annotations) *)
  op_waits : (int * string list) list;
      (** plan index -> events the op waits on ({!wait} annotations) *)
}

val compile :
  ?precision:Kernel_ast.Cast.precision ->
  sizes:(string -> int option) ->
  hexpr ->
  compiled_host
(** Compile a host program; [sizes] resolves size variables to concrete
    extents (buffer sizes, NDRanges).

    @raise Host_error on malformed programs. *)

val run : compiled_host -> Vgpu.Runtime.t -> unit
(** Execute the plan on a runtime whose buffer table binds every input
    buffer (see {!Vgpu.Runtime.bind}). *)

val iterate : times:int -> rotate:string list list -> compiled_host -> Vgpu.Runtime.plan
(** Time stepping: the per-step plan repeated [times] times with cyclic
    buffer-binding rotations between steps (e.g.
    [rotate:[["prev"; "curr"; "next"]]]).  Paper §V-A: "for an actual
    application the two kernels are executed iteratively". *)
