(* Host-side Lift: the primitives of paper §IV-A (Table I) and their code
   generation.

   A host program orchestrates data movement and kernel launches:

     OclKernel(f, args...)   launch a device kernel compiled from the
                             Lift program [f]
     ToGPU / ToHost          transfer a buffer (identity semantics)
     WriteTo(to, e)          make [e]'s output land in [to]'s buffer

   Host programs compile to two artifacts:
   - an executable [Vgpu.Runtime.plan] (the simulated OpenCL host run);
   - OpenCL-style host C source, for inspection (setArg /
     enqueueNDRangeKernel / enqueueWriteBuffer / enqueueReadBuffer). *)

open Kernel_ast

exception Host_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Host_error s)) fmt

type hexpr =
  | H_input of Ast.param          (* a host-resident input buffer *)
  | H_int of int
  | H_real of float
  | H_to_gpu of hexpr
  | H_to_host of hexpr
  | H_kernel of { k_name : string; f : Ast.lam; args : hexpr list }
  | H_write_to of hexpr * hexpr   (* target, value *)
  | H_let of Ast.param * hexpr * hexpr
  | H_tuple of hexpr list
  | H_copy of { src : hexpr; src_off : int; dst : hexpr; dst_off : int; elems : int }
      (* device-to-device sub-buffer copy (clEnqueueCopyBuffer): the
         ghost-slab transfer of the sharded backend *)
  | H_event of string * hexpr
      (* the last enqueue compiled from the inner expression signals the
         named cl_event *)
  | H_wait of string list * hexpr
      (* the first enqueue compiled from the inner expression carries
         the named events as its wait list *)

let input p = H_input p
let to_gpu e = H_to_gpu e
let to_host e = H_to_host e
let ocl_kernel ~name f args = H_kernel { k_name = name; f; args }
let write_to t v = H_write_to (t, v)

let copy ~src ~src_off ~dst ~dst_off ~elems =
  H_copy { src; src_off; dst; dst_off; elems }

let event name e = H_event (name, e)
let wait names e = H_wait (names, e)

(* One halo exchange across a Z cut between the [lo] slab (owning planes
   below the cut, [lo_planes] local planes including its two ghosts) and
   the [hi] slab above it: lo's top owned plane refreshes hi's bottom
   ghost, hi's bottom owned plane refreshes lo's top ghost.  [plane] is
   the XY plane size in elements. *)
let halo_exchange ~plane ~lo ~lo_planes ~hi =
  H_tuple
    [
      H_copy
        {
          src = lo;
          src_off = (lo_planes - 2) * plane;
          dst = hi;
          dst_off = 0;
          elems = plane;
        };
      H_copy
        {
          src = hi;
          src_off = plane;
          dst = lo;
          dst_off = (lo_planes - 1) * plane;
          elems = plane;
        };
    ]

(* What a host expression denotes after compilation. *)
type denot =
  | D_buf of string * Ty.t
  | D_int of int
  | D_real of float
  | D_tuple of denot list

type compiled_host = {
  plan : Vgpu.Runtime.plan;
  kernels : Codegen.compiled list;
  source : string; (* OpenCL-style host pseudo-C *)
  result : denot;
  buffer_elems : (string * int) list;
      (* extent of every buffer the plan touches, as resolved at compile
         time — inputs, kernel outputs and temporaries alike; consumed
         by the emitted C skeleton and the host-plan lint *)
  op_events : (int * string) list;
      (* plan index -> cl_event the op signals (H_event annotations) *)
  op_waits : (int * string list) list;
      (* plan index -> cl_events the op waits on (H_wait annotations) *)
}

type st = {
  mutable ops : Vgpu.Runtime.op list; (* reversed *)
  mutable lines : string list;        (* reversed *)
  mutable kernels : Codegen.compiled list;
  mutable fresh : int;
  mutable elems : (string * int) list; (* buffer extents, reversed *)
  mutable op_events : (int * string) list;   (* reversed *)
  mutable op_waits : (int * string list) list;  (* reversed *)
  mutable pending_waits : string list;
      (* H_wait annotations to attach to the next pushed op *)
  sizes : string -> int option;
  precision : Cast.precision;
  venv : (int, denot) Hashtbl.t;
}

let push_op st op =
  (match st.pending_waits with
  | [] -> ()
  | waits ->
      st.op_waits <- (List.length st.ops, waits) :: st.op_waits;
      st.pending_waits <- []);
  st.ops <- op :: st.ops
let push_line st fmt = Printf.ksprintf (fun s -> st.lines <- s :: st.lines) fmt

let note_elems st name n =
  if not (List.mem_assoc name st.elems) then st.elems <- (name, n) :: st.elems

let fresh st base =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s_%d" base st.fresh

let eval_size st (s : Size.t) =
  try Size.eval st.sizes s
  with Failure m -> err "host: %s" m

let rec eval_cexpr st (e : Cast.expr) : int =
  match Cast.simplify e with
  | Cast.Int_lit n -> n
  | Cast.Var v -> (
      match st.sizes v with
      | Some n -> n
      | None -> err "host: unbound size variable %s" v)
  | Cast.Binop (op, a, b) -> (
      let x = eval_cexpr st a and y = eval_cexpr st b in
      match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div -> x / y
      | Mod -> x mod y
      | _ -> err "host: non-arithmetic size expression")
  | _ -> err "host: unsupported size expression"

let elems_of_ty st (ty : Ty.t) = eval_size st (Ty.scalar_count ty)

let cast_ty_of (ty : Ty.t) =
  match Ty.leaf_scalar ty with
  | Some s -> Ty.to_cast_scalar s
  | None -> err "host: unstorable type %s" (Ty.to_string ty)

let rec compile_hexpr st (e : hexpr) : denot =
  match e with
  | H_input p -> (
      (* a let-bound name shadows an input of the same param *)
      match Hashtbl.find_opt st.venv p.Ast.p_id with
      | Some d -> d
      | None ->
          if Ty.is_scalar p.Ast.p_ty then err "host: scalar inputs must be H_int/H_real"
          else begin
            (match elems_of_ty st p.Ast.p_ty with
            | n -> note_elems st p.Ast.p_name n
            | exception Host_error _ -> ());
            D_buf (p.Ast.p_name, p.Ast.p_ty)
          end)
  | H_int n -> D_int n
  | H_real r -> D_real r
  | H_to_gpu e -> (
      match compile_hexpr st e with
      | D_buf (name, ty) ->
          push_op st (Vgpu.Runtime.Copy_to_gpu name);
          push_line st "enqueueWriteBuffer(queue, %s_g, CL_TRUE, 0, sizeof(%s)*%d, %s);" name
            (Print.ty_name st.precision (cast_ty_of ty))
            (elems_of_ty st ty) name;
          D_buf (name, ty)
      | d -> d)
  | H_to_host e -> (
      match compile_hexpr st e with
      | D_buf (name, ty) ->
          push_op st (Vgpu.Runtime.Copy_to_host name);
          push_line st "enqueueReadBuffer(queue, %s_g, CL_TRUE, 0, sizeof(%s)*%d, %s);" name
            (Print.ty_name st.precision (cast_ty_of ty))
            (elems_of_ty st ty) name;
          D_buf (name, ty)
      | d -> d)
  | H_let (p, v, b) ->
      let d = compile_hexpr st v in
      Hashtbl.replace st.venv p.Ast.p_id d;
      compile_hexpr st b
  | H_tuple es -> D_tuple (List.map (compile_hexpr st) es)
  | H_copy { src; src_off; dst; dst_off; elems } -> (
      match (compile_hexpr st src, compile_hexpr st dst) with
      | D_buf (sname, sty), D_buf (dname, dty) ->
          push_op st
            (Vgpu.Runtime.Copy_buffer { src = sname; src_off; dst = dname; dst_off; elems });
          let tyn = Print.ty_name st.precision (cast_ty_of sty) in
          push_line st
            "enqueueCopyBuffer(queue, %s_g, %s_g, sizeof(%s)*%d, sizeof(%s)*%d, sizeof(%s)*%d);"
            sname dname tyn src_off tyn dst_off tyn elems;
          D_buf (dname, dty)
      | _ -> err "host: copy endpoints must be buffers")
  | H_write_to (t, v) -> (
      let dt = compile_hexpr st t in
      match (dt, v) with
      | D_buf (name, _), H_kernel { k_name; f; args } ->
          compile_kernel_call st ~k_name ~f ~args ~out_override:(Some name)
      | D_buf _, _ ->
          (* value must already write into the target (device WriteTo) *)
          let _ = compile_hexpr st v in
          dt
      | _ -> err "host: WriteTo target is not a buffer")
  | H_kernel { k_name; f; args } -> compile_kernel_call st ~k_name ~f ~args ~out_override:None
  | H_event (name, e) ->
      let before = List.length st.ops in
      let d = compile_hexpr st e in
      if List.length st.ops = before then
        err "host: Event(%s) wraps an expression that enqueues nothing" name;
      if List.exists (fun (_, n) -> n = name) st.op_events then
        err "host: event %s signaled twice" name;
      (* annotate the most recently enqueued op *)
      st.op_events <- (List.length st.ops - 1, name) :: st.op_events;
      push_line st "/* previous enqueue signals ev_%s */" name;
      d
  | H_wait (names, e) ->
      let before = List.length st.ops in
      st.pending_waits <- st.pending_waits @ names;
      push_line st "/* next enqueue waits on: %s */"
        (String.concat ", " (List.map (( ^ ) "ev_") names));
      let d = compile_hexpr st e in
      if List.length st.ops = before then
        err "host: Wait wraps an expression that enqueues nothing";
      d

and compile_kernel_call st ~k_name ~f ~args ~out_override : denot =
  let c = Codegen.compile_kernel ~name:k_name ~precision:st.precision f in
  st.kernels <- c :: st.kernels;
  let k = c.Codegen.kernel in
  (* Evaluate argument denotations, in lambda-parameter order. *)
  if List.length args <> List.length f.Ast.l_params then
    err "host: kernel %s expects %d args, got %d" k_name (List.length f.Ast.l_params)
      (List.length args);
  let denots = List.map (compile_hexpr st) args in
  let by_param =
    List.map2 (fun (p : Ast.param) d -> (p.Ast.p_name, d)) f.Ast.l_params denots
  in
  (* Output buffer, if the kernel produces one. *)
  let out_binding =
    match c.Codegen.out_param with
    | None -> []
    | Some out ->
        let name =
          match out_override with Some n -> n | None -> fresh st k_name ^ "_out"
        in
        if out_override = None then begin
          let elems = elems_of_ty st c.Codegen.result_ty in
          push_op st
            (Vgpu.Runtime.Alloc { name; ty = cast_ty_of c.Codegen.result_ty; elems });
          note_elems st name elems;
          push_line st "cl_mem %s = clCreateBuffer(ctx, CL_MEM_READ_WRITE, %d);" name elems
        end
        else (
          match elems_of_ty st c.Codegen.result_ty with
          | elems -> note_elems st name elems
          | exception Host_error _ -> ());
        [ (out, D_buf (name, c.Codegen.result_ty)) ]
  in
  let temp_bindings =
    List.map
      (fun (tname, ty) ->
        let name = fresh st "tmp" in
        let elems = elems_of_ty st ty in
        push_op st (Vgpu.Runtime.Alloc { name; ty = cast_ty_of ty; elems });
        note_elems st name elems;
        (tname, D_buf (name, ty)))
      c.Codegen.temp_params
  in
  let bindings = by_param @ out_binding @ temp_bindings in
  let resolve (p : Cast.param) : Vgpu.Runtime.arg =
    match List.assoc_opt p.Cast.p_name bindings with
    | Some (D_buf (n, _)) -> Vgpu.Runtime.A_buf n
    | Some (D_int n) -> Vgpu.Runtime.A_int n
    | Some (D_real r) -> Vgpu.Runtime.A_real r
    | Some (D_tuple _) -> err "host: tuple passed as kernel argument"
    | None -> (
        (* size variables resolve through the size environment *)
        match st.sizes p.Cast.p_name with
        | Some n -> Vgpu.Runtime.A_int n
        | None -> err "host: cannot resolve kernel argument %s" p.Cast.p_name)
  in
  let rargs = List.map resolve k.Cast.params in
  let global = List.map (eval_cexpr st) k.Cast.global_size in
  List.iteri
    (fun i (a : Vgpu.Runtime.arg) ->
      match a with
      | Vgpu.Runtime.A_buf n -> push_line st "clSetKernelArg(%s, %d, %s_g);" k_name i n
      | Vgpu.Runtime.A_int v -> push_line st "clSetKernelArg(%s, %d, %d);" k_name i v
      | Vgpu.Runtime.A_real v -> push_line st "clSetKernelArg(%s, %d, %g);" k_name i v)
    rargs;
  push_line st "enqueueNDRangeKernel(queue, %s, global={%s});" k_name
    (String.concat ", " (List.map string_of_int global));
  (* The second kernel consumes the first kernel's output: an in-order
     queue provides the synchronisation the paper describes in §V-A. *)
  push_op st (Vgpu.Runtime.Launch { kernel = k; args = rargs; global });
  match (c.Codegen.out_param, out_override) with
  | Some _, Some name -> D_buf (name, c.Codegen.result_ty)
  | Some out, None -> List.assoc out bindings
  | None, _ -> (
      (* self-writing kernel: denote the buffer of its first in-place
         written argument (the device WriteTo target) *)
      match c.Codegen.written_params with
      | w :: _ -> (
          match List.assoc_opt w bindings with
          | Some d -> d
          | None -> err "host: written parameter %s not bound" w)
      | [] -> err "host: kernel %s writes nothing" k_name)

(* Compile a host program.  [sizes] resolves size variables; inputs are
   bound by name in the runtime before execution. *)
let compile ?(precision = Cast.Double) ~sizes (e : hexpr) : compiled_host =
  let st =
    {
      ops = [];
      lines = [];
      kernels = [];
      fresh = 0;
      elems = [];
      op_events = [];
      op_waits = [];
      pending_waits = [];
      sizes;
      precision;
      venv = Hashtbl.create 8;
    }
  in
  let result = compile_hexpr st e in
  {
    plan = List.rev st.ops;
    kernels = List.rev st.kernels;
    source = String.concat "\n" (List.rev st.lines) ^ "\n";
    result;
    buffer_elems = List.rev st.elems;
    op_events = List.rev st.op_events;
    op_waits = List.rev st.op_waits;
  }

(* Execute a compiled host program on a runtime whose buffer table
   already binds every input buffer. *)
let run (c : compiled_host) (rt : Vgpu.Runtime.t) = Vgpu.Runtime.run rt c.plan

(* Time stepping (paper §V-A: "for an actual application the two kernels
   are executed iteratively"): repeat the per-step plan [times] times,
   rotating buffer bindings between steps.  [rotate] lists cyclic
   rotations, e.g. [["prev"; "curr"; "next"]] makes the freshly written
   next grid the new curr, as the simulation drivers do. *)
let iterate ~times ~(rotate : string list list) (c : compiled_host) : Vgpu.Runtime.plan =
  if times < 0 then err "host: negative iteration count";
  let swaps =
    List.concat_map
      (fun cycle ->
        (* rotate left by one: [a;b;c] -> bindings a<-b, b<-c, c<-a *)
        match cycle with
        | [] | [ _ ] -> []
        | _ :: _ ->
            let rec pairs = function
              | x :: (y :: _ as tl) -> Vgpu.Runtime.Swap (x, y) :: pairs tl
              | _ -> []
            in
            pairs cycle)
      rotate
  in
  List.concat (List.init times (fun _ -> c.plan @ swaps))
