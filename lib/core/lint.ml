(* Host-plan lint: static well-formedness checks on host programs,
   before (and independent of) compilation.

   Three families of diagnostics:

   - data movement on a single device ([check_host], over [Host.hexpr]):
     kernel/copy operands that were never transferred with ToGPU
     (use-before-ToGPU), and ToGPU transfers whose buffer is never
     consumed afterwards (dead transfer);
   - kernel calls ([check_host]): argument arity against the Lift
     lambda, and scalar/buffer kind mismatches per parameter;
   - sharded plans ([check_sharded], over [Vgpu.Multi.plan]): a Z-cut
     stepped again without a halo exchange between the adjacent devices
     in the previous step — the bug class the paper's ghost-plane
     protocol exists to prevent. *)

type severity =
  | Error
  | Warning

type issue = {
  severity : severity;
  code : string;  (* stable machine-readable tag *)
  message : string;
}

let issue severity code fmt = Printf.ksprintf (fun message -> { severity; code; message }) fmt
let errors issues = List.filter (fun i -> i.severity = Error) issues

let pp_issue ppf i =
  Fmt.pf ppf "%s [%s] %s"
    (match i.severity with Error -> "error:" | Warning -> "warning:")
    i.code i.message

(* -- Single-device host programs -------------------------------------- *)

(* Approximate denotation of a host expression, mirroring
   [Host.compile_hexpr] without generating code. *)
type hkind =
  | K_scalar
  | K_buf of string
  | K_out  (* a kernel's freshly allocated (device-resident) output *)
  | K_tuple

type hstate = {
  mutable issues : issue list;  (* reversed *)
  on_device : (string, unit) Hashtbl.t;
  pending_to_gpu : (string, unit) Hashtbl.t;  (* transferred, not yet consumed *)
  signaled : (string, unit) Hashtbl.t;  (* events signaled so far *)
  venv : (int, hkind) Hashtbl.t;
}

let report st i = st.issues <- i :: st.issues

let consume st name =
  Hashtbl.remove st.pending_to_gpu name;
  Hashtbl.mem st.on_device name

let require_on_device st ~what name =
  if not (consume st name) then
    report st
      (issue Error "use-before-togpu" "%s uses buffer %s before any ToGPU transfer" what name)

let rec lint_hexpr st (e : Host.hexpr) : hkind =
  match e with
  | H_int _ | H_real _ -> K_scalar
  | H_input p -> (
      match Hashtbl.find_opt st.venv p.Ast.p_id with
      | Some k -> k
      | None -> if Ty.is_scalar p.Ast.p_ty then K_scalar else K_buf p.Ast.p_name)
  | H_to_gpu e -> (
      match lint_hexpr st e with
      | K_buf name ->
          if Hashtbl.mem st.pending_to_gpu name then
            report st
              (issue Warning "dead-transfer" "buffer %s is transferred to the GPU twice with no use in between" name);
          Hashtbl.replace st.on_device name ();
          Hashtbl.replace st.pending_to_gpu name ();
          K_buf name
      | k -> k)
  | H_to_host e -> (
      match lint_hexpr st e with
      | K_buf name ->
          if not (Hashtbl.mem st.on_device name) then
            report st
              (issue Warning "dead-transfer" "buffer %s is read back without ever living on the GPU" name);
          K_buf name
      | k -> k)
  | H_let (p, v, b) ->
      let k = lint_hexpr st v in
      Hashtbl.replace st.venv p.Ast.p_id k;
      lint_hexpr st b
  | H_tuple es ->
      List.iter (fun e -> ignore (lint_hexpr st e)) es;
      K_tuple
  | H_copy { src; dst; _ } -> (
      let sk = lint_hexpr st src in
      let dk = lint_hexpr st dst in
      (match sk with
      | K_buf name -> require_on_device st ~what:"a device copy" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "copy source is not a buffer"));
      (match dk with
      | K_buf name -> require_on_device st ~what:"a device copy" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "copy destination is not a buffer"));
      dk)
  | H_write_to (t, v) -> (
      let tk = lint_hexpr st t in
      (match tk with
      | K_buf name -> require_on_device st ~what:"WriteTo" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "WriteTo target is not a buffer"));
      let _ = lint_hexpr st v in
      match tk with K_buf _ | K_out -> tk | _ -> K_out)
  | H_event (name, e) ->
      let k = lint_hexpr st e in
      if Hashtbl.mem st.signaled name then
        report st (issue Error "duplicate-event" "event %s is signaled twice" name)
      else Hashtbl.replace st.signaled name ();
      k
  | H_wait (names, e) ->
      List.iter
        (fun n ->
          if not (Hashtbl.mem st.signaled n) then
            report st
              (issue Error "wait-unsignaled"
                 "wait on event %s, which no earlier enqueue signals" n))
        names;
      lint_hexpr st e
  | H_kernel { k_name; f; args } ->
      let params = f.Ast.l_params in
      if List.length args <> List.length params then begin
        report st
          (issue Error "arity-mismatch" "kernel %s expects %d arguments, got %d" k_name
             (List.length params) (List.length args));
        List.iter (fun a -> ignore (lint_hexpr st a)) args
      end
      else
        List.iter2
          (fun (p : Ast.param) a ->
            let k = lint_hexpr st a in
            let want_scalar = Ty.is_scalar p.Ast.p_ty in
            match (k, want_scalar) with
            | K_scalar, true -> ()
            | (K_buf _ | K_out), false -> (
                match k with
                | K_buf name ->
                    require_on_device st ~what:(Printf.sprintf "kernel %s" k_name) name
                | _ -> ())
            | K_scalar, false ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: scalar passed for buffer parameter %s"
                     k_name p.Ast.p_name)
            | (K_buf _ | K_out), true ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: buffer passed for scalar parameter %s"
                     k_name p.Ast.p_name)
            | K_tuple, _ ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: tuple passed for parameter %s" k_name
                     p.Ast.p_name))
          params args;
      K_out

let check_host (e : Host.hexpr) : issue list =
  let st =
    {
      issues = [];
      on_device = Hashtbl.create 8;
      pending_to_gpu = Hashtbl.create 8;
      signaled = Hashtbl.create 8;
      venv = Hashtbl.create 8;
    }
  in
  ignore (lint_hexpr st e);
  Hashtbl.iter
    (fun name () ->
      report st
        (issue Warning "dead-transfer" "buffer %s is transferred to the GPU but never used" name))
    st.pending_to_gpu;
  List.rev st.issues

(* -- Sharded multi-device plans --------------------------------------- *)

(* A sharded time step ends with the per-device buffer rotation (Swap
   ops).  Between two consecutive steps that both launch kernels on
   devices i and i+1, the freshly written ghost planes must have been
   exchanged across that Z-cut — otherwise step k+1 consumes stale halo
   data.  We segment the plan at Swap boundaries and check every
   adjacent launching pair for an exchange in the earlier segment. *)
let check_sharded (plan : Vgpu.Multi.plan) : issue list =
  (* split into segments: a run of non-Swap ops terminated by Swaps *)
  let segments = ref [] and current = ref [] and saw_swap = ref false in
  let flush () =
    if !current <> [] || !saw_swap then begin
      segments := List.rev !current :: !segments;
      current := [];
      saw_swap := false
    end
  in
  List.iter
    (fun (op : Vgpu.Multi.op) ->
      match op with
      | Vgpu.Multi.Dev (_, Vgpu.Runtime.Swap _) -> saw_swap := true
      | op ->
          if !saw_swap then flush ();
          current := op :: !current)
    plan;
  flush ();
  let segments = List.rev !segments in
  let launching seg =
    List.filter_map
      (function Vgpu.Multi.Dev (i, Vgpu.Runtime.Launch _) -> Some i | _ -> None)
      seg
    |> List.sort_uniq compare
  in
  let exchanged_pairs seg =
    List.filter_map
      (function
        | Vgpu.Multi.Exchange { src_dev; dst_dev; _ } ->
            Some (min src_dev dst_dev, max src_dev dst_dev)
        | _ -> None)
      seg
    |> List.sort_uniq compare
  in
  let issues = ref [] in
  let rec walk = function
    | seg :: (next :: _ as rest) ->
        let l1 = launching seg and l2 = launching next in
        let ex = exchanged_pairs seg in
        List.iter
          (fun i ->
            let pair = (i, i + 1) in
            if
              List.mem i l1 && List.mem (i + 1) l1 && List.mem i l2
              && List.mem (i + 1) l2
              && not (List.mem pair ex)
            then
              issues :=
                issue Error "missing-halo-exchange"
                  "devices %d and %d step again without a halo exchange across their Z-cut" i
                  (i + 1)
                :: !issues)
          l1;
        walk rest
    | _ -> []
  in
  ignore (walk segments);
  List.rev !issues

(* -- Asynchronous (overlapped) multi-device plans --------------------- *)

(* Event-ordered async plans drop the per-step barrier of [check_sharded]'s
   world: ordering is per-queue FIFO plus explicit signal->wait edges.
   The checks:

   - wait/signal well-formedness: a wait must name an imported event or
     one signaled by an earlier op; an event may be signaled once;
   - halo-producer ordering: an Exchange must happen after some earlier
     launch on its source device that references the source buffer (the
     plane it copies must already be written);
   - halo-consumer ordering: among the *later* launches on the
     destination device that reference the exchanged buffer, at least
     one must be ordered after the exchange — the frontier launch whose
     wait the overlapped schedule exists to carry.  No ordered consumer
     means the next step can read a stale ghost plane: exactly the race
     a dropped [a_waits] introduces.  (Interior launches are legitimately
     concurrent with the exchange, so the rule demands one ordered
     consumer, not all.)

   Buffer identities are tracked through per-device [Swap] rotation
   markers (see [Gpu_sim.overlap_plan]), so "the exchanged buffer" stays
   meaningful across time steps.  Happens-before is computed on whole
   ops: FIFO chains ops sharing a queue (an Exchange queues on its
   source device), signal->wait edges bridge queues. *)
let check_async ?(imports = []) (plan : Vgpu.Multi.async_plan) : issue list =
  let ops = Array.of_list plan in
  let n = Array.length ops in
  let queue_of (o : Vgpu.Multi.async_op) =
    match o.Vgpu.Multi.a_op with
    | Vgpu.Multi.Dev (i, _) -> i
    | Vgpu.Multi.Exchange { src_dev; _ } -> src_dev
  in
  let issues = ref [] in
  let add i = issues := i :: !issues in
  (* signal/wait well-formedness *)
  let signal_idx : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      match o.Vgpu.Multi.a_signal with
      | Some e ->
          if Hashtbl.mem signal_idx e then
            add (issue Error "duplicate-event" "async op %d: event %d is signaled twice" i e)
          else Hashtbl.replace signal_idx e i
      | None -> ())
    ops;
  Array.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      List.iter
        (fun e ->
          if not (List.mem e imports) then
            match Hashtbl.find_opt signal_idx e with
            | Some j when j < i -> ()
            | _ ->
                add
                  (issue Error "wait-unsignaled"
                     "async op %d waits on event %d, which no earlier op signals (and is not imported)"
                     i e))
        o.Vgpu.Multi.a_waits)
    ops;
  (* buffer identity through rotation Swaps: per (device, name) -> the
     physical buffer currently bound to that name *)
  let phys : (int * string, string) Hashtbl.t = Hashtbl.create 64 in
  let resolve d name = Option.value ~default:name (Hashtbl.find_opt phys (d, name)) in
  (* per-op resolved references, in plan order *)
  let launch_refs = Array.make n None in (* (device, phys names) for launches *)
  let exch = Array.make n None in (* (src_dev, src_phys, dst_dev, dst_phys) *)
  Array.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      match o.Vgpu.Multi.a_op with
      | Vgpu.Multi.Dev (d, Vgpu.Runtime.Swap (a, b)) ->
          let pa = resolve d a and pb = resolve d b in
          Hashtbl.replace phys (d, a) pb;
          Hashtbl.replace phys (d, b) pa
      | Vgpu.Multi.Dev (d, Vgpu.Runtime.Launch { kernel; args; _ }) ->
          let names =
            List.filter_map
              (function Vgpu.Runtime.A_buf b -> Some (resolve d b) | _ -> None)
              args
          in
          ignore kernel;
          launch_refs.(i) <- Some (d, names)
      | Vgpu.Multi.Dev (_, _) -> ()
      | Vgpu.Multi.Exchange { src_dev; src; dst_dev; dst; _ } ->
          exch.(i) <- Some (src_dev, resolve src_dev src, dst_dev, resolve dst_dev dst))
    ops;
  (* happens-before: successor edges are next-op-on-same-queue (FIFO) and
     signal->wait; [reach from] marks every op ordered after [from] *)
  let next_on_queue = Array.make n (-1) in
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i o ->
      let q = queue_of o in
      (match Hashtbl.find_opt last q with
      | Some j -> next_on_queue.(j) <- i
      | None -> ());
      Hashtbl.replace last q i)
    ops;
  let waiters : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      List.iter
        (fun e ->
          Hashtbl.replace waiters e (i :: Option.value ~default:[] (Hashtbl.find_opt waiters e)))
        o.Vgpu.Multi.a_waits)
    ops;
  let reach from =
    let seen = Array.make n false in
    let rec go i =
      if i >= 0 && i < n && not seen.(i) then begin
        seen.(i) <- true;
        go next_on_queue.(i);
        match ops.(i).Vgpu.Multi.a_signal with
        | Some e -> List.iter go (Option.value ~default:[] (Hashtbl.find_opt waiters e))
        | None -> ()
      end
    in
    (* successors of [from] only, not [from] itself *)
    (match ops.(from).Vgpu.Multi.a_signal with
    | Some e -> List.iter go (Option.value ~default:[] (Hashtbl.find_opt waiters e))
    | None -> ());
    go next_on_queue.(from);
    seen
  in
  Array.iteri
    (fun x o ->
      match exch.(x) with
      | None -> ()
      | Some (src_dev, src_phys, dst_dev, dst_phys) ->
          ignore o;
          let after = reach x in
          (* producer: some earlier src-device launch touching the source
             buffer must be ordered before the exchange *)
          let producers = ref [] and ordered_producer = ref false in
          for l = 0 to x - 1 do
            match launch_refs.(l) with
            | Some (d, names) when d = src_dev && List.mem src_phys names ->
                producers := l :: !producers;
                (* hb(l, x): x reachable from l *)
                if (reach l).(x) then ordered_producer := true
            | _ -> ()
          done;
          if !producers <> [] && not !ordered_producer then
            add
              (issue Error "unordered-halo-producer"
                 "async op %d: exchange of %s from device %d is not ordered after any launch writing it"
                 x src_phys src_dev);
          (* consumer: among later dst-device launches touching the
             exchanged buffer, at least one must wait (transitively) on
             the exchange *)
          let consumers = ref [] and ordered_consumer = ref false in
          for l = x + 1 to n - 1 do
            match launch_refs.(l) with
            | Some (d, names) when d = dst_dev && List.mem dst_phys names ->
                consumers := l :: !consumers;
                if after.(l) then ordered_consumer := true
            | _ -> ()
          done;
          if !consumers <> [] && not !ordered_consumer then
            add
              (issue Error "unordered-halo-consumer"
                 "async op %d: exchange of %s into device %d has no later launch ordered after it — a dropped frontier wait would read a stale ghost plane"
                 x dst_phys dst_dev))
    ops;
  List.rev !issues
