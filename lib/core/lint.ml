(* Host-plan lint: static well-formedness checks on host programs,
   before (and independent of) compilation.

   Three families of diagnostics:

   - data movement on a single device ([check_host], over [Host.hexpr]):
     kernel/copy operands that were never transferred with ToGPU
     (use-before-ToGPU), and ToGPU transfers whose buffer is never
     consumed afterwards (dead transfer);
   - kernel calls ([check_host]): argument arity against the Lift
     lambda, and scalar/buffer kind mismatches per parameter;
   - sharded plans ([check_sharded], over [Vgpu.Multi.plan]): a Z-cut
     stepped again without a halo exchange between the adjacent devices
     in the previous step — the bug class the paper's ghost-plane
     protocol exists to prevent. *)

type severity =
  | Error
  | Warning

type issue = {
  severity : severity;
  code : string;  (* stable machine-readable tag *)
  message : string;
}

let issue severity code fmt = Printf.ksprintf (fun message -> { severity; code; message }) fmt
let errors issues = List.filter (fun i -> i.severity = Error) issues

let pp_issue ppf i =
  Fmt.pf ppf "%s [%s] %s"
    (match i.severity with Error -> "error:" | Warning -> "warning:")
    i.code i.message

(* -- Single-device host programs -------------------------------------- *)

(* Approximate denotation of a host expression, mirroring
   [Host.compile_hexpr] without generating code. *)
type hkind =
  | K_scalar
  | K_buf of string
  | K_out  (* a kernel's freshly allocated (device-resident) output *)
  | K_tuple

type hstate = {
  mutable issues : issue list;  (* reversed *)
  on_device : (string, unit) Hashtbl.t;
  pending_to_gpu : (string, unit) Hashtbl.t;  (* transferred, not yet consumed *)
  venv : (int, hkind) Hashtbl.t;
}

let report st i = st.issues <- i :: st.issues

let consume st name =
  Hashtbl.remove st.pending_to_gpu name;
  Hashtbl.mem st.on_device name

let require_on_device st ~what name =
  if not (consume st name) then
    report st
      (issue Error "use-before-togpu" "%s uses buffer %s before any ToGPU transfer" what name)

let rec lint_hexpr st (e : Host.hexpr) : hkind =
  match e with
  | H_int _ | H_real _ -> K_scalar
  | H_input p -> (
      match Hashtbl.find_opt st.venv p.Ast.p_id with
      | Some k -> k
      | None -> if Ty.is_scalar p.Ast.p_ty then K_scalar else K_buf p.Ast.p_name)
  | H_to_gpu e -> (
      match lint_hexpr st e with
      | K_buf name ->
          if Hashtbl.mem st.pending_to_gpu name then
            report st
              (issue Warning "dead-transfer" "buffer %s is transferred to the GPU twice with no use in between" name);
          Hashtbl.replace st.on_device name ();
          Hashtbl.replace st.pending_to_gpu name ();
          K_buf name
      | k -> k)
  | H_to_host e -> (
      match lint_hexpr st e with
      | K_buf name ->
          if not (Hashtbl.mem st.on_device name) then
            report st
              (issue Warning "dead-transfer" "buffer %s is read back without ever living on the GPU" name);
          K_buf name
      | k -> k)
  | H_let (p, v, b) ->
      let k = lint_hexpr st v in
      Hashtbl.replace st.venv p.Ast.p_id k;
      lint_hexpr st b
  | H_tuple es ->
      List.iter (fun e -> ignore (lint_hexpr st e)) es;
      K_tuple
  | H_copy { src; dst; _ } -> (
      let sk = lint_hexpr st src in
      let dk = lint_hexpr st dst in
      (match sk with
      | K_buf name -> require_on_device st ~what:"a device copy" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "copy source is not a buffer"));
      (match dk with
      | K_buf name -> require_on_device st ~what:"a device copy" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "copy destination is not a buffer"));
      dk)
  | H_write_to (t, v) -> (
      let tk = lint_hexpr st t in
      (match tk with
      | K_buf name -> require_on_device st ~what:"WriteTo" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "WriteTo target is not a buffer"));
      let _ = lint_hexpr st v in
      match tk with K_buf _ | K_out -> tk | _ -> K_out)
  | H_kernel { k_name; f; args } ->
      let params = f.Ast.l_params in
      if List.length args <> List.length params then begin
        report st
          (issue Error "arity-mismatch" "kernel %s expects %d arguments, got %d" k_name
             (List.length params) (List.length args));
        List.iter (fun a -> ignore (lint_hexpr st a)) args
      end
      else
        List.iter2
          (fun (p : Ast.param) a ->
            let k = lint_hexpr st a in
            let want_scalar = Ty.is_scalar p.Ast.p_ty in
            match (k, want_scalar) with
            | K_scalar, true -> ()
            | (K_buf _ | K_out), false -> (
                match k with
                | K_buf name ->
                    require_on_device st ~what:(Printf.sprintf "kernel %s" k_name) name
                | _ -> ())
            | K_scalar, false ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: scalar passed for buffer parameter %s"
                     k_name p.Ast.p_name)
            | (K_buf _ | K_out), true ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: buffer passed for scalar parameter %s"
                     k_name p.Ast.p_name)
            | K_tuple, _ ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: tuple passed for parameter %s" k_name
                     p.Ast.p_name))
          params args;
      K_out

let check_host (e : Host.hexpr) : issue list =
  let st =
    {
      issues = [];
      on_device = Hashtbl.create 8;
      pending_to_gpu = Hashtbl.create 8;
      venv = Hashtbl.create 8;
    }
  in
  ignore (lint_hexpr st e);
  Hashtbl.iter
    (fun name () ->
      report st
        (issue Warning "dead-transfer" "buffer %s is transferred to the GPU but never used" name))
    st.pending_to_gpu;
  List.rev st.issues

(* -- Sharded multi-device plans --------------------------------------- *)

(* A sharded time step ends with the per-device buffer rotation (Swap
   ops).  Between two consecutive steps that both launch kernels on
   devices i and i+1, the freshly written ghost planes must have been
   exchanged across that Z-cut — otherwise step k+1 consumes stale halo
   data.  We segment the plan at Swap boundaries and check every
   adjacent launching pair for an exchange in the earlier segment. *)
let check_sharded (plan : Vgpu.Multi.plan) : issue list =
  (* split into segments: a run of non-Swap ops terminated by Swaps *)
  let segments = ref [] and current = ref [] and saw_swap = ref false in
  let flush () =
    if !current <> [] || !saw_swap then begin
      segments := List.rev !current :: !segments;
      current := [];
      saw_swap := false
    end
  in
  List.iter
    (fun (op : Vgpu.Multi.op) ->
      match op with
      | Vgpu.Multi.Dev (_, Vgpu.Runtime.Swap _) -> saw_swap := true
      | op ->
          if !saw_swap then flush ();
          current := op :: !current)
    plan;
  flush ();
  let segments = List.rev !segments in
  let launching seg =
    List.filter_map
      (function Vgpu.Multi.Dev (i, Vgpu.Runtime.Launch _) -> Some i | _ -> None)
      seg
    |> List.sort_uniq compare
  in
  let exchanged_pairs seg =
    List.filter_map
      (function
        | Vgpu.Multi.Exchange { src_dev; dst_dev; _ } ->
            Some (min src_dev dst_dev, max src_dev dst_dev)
        | _ -> None)
      seg
    |> List.sort_uniq compare
  in
  let issues = ref [] in
  let rec walk = function
    | seg :: (next :: _ as rest) ->
        let l1 = launching seg and l2 = launching next in
        let ex = exchanged_pairs seg in
        List.iter
          (fun i ->
            let pair = (i, i + 1) in
            if
              List.mem i l1 && List.mem (i + 1) l1 && List.mem i l2
              && List.mem (i + 1) l2
              && not (List.mem pair ex)
            then
              issues :=
                issue Error "missing-halo-exchange"
                  "devices %d and %d step again without a halo exchange across their Z-cut" i
                  (i + 1)
                :: !issues)
          l1;
        walk rest
    | _ -> []
  in
  ignore (walk segments);
  List.rev !issues
