(* Host-plan lint: static well-formedness checks on host programs,
   before (and independent of) compilation.

   Three families of diagnostics:

   - data movement on a single device ([check_host], over [Host.hexpr]):
     kernel/copy operands that were never transferred with ToGPU
     (use-before-ToGPU), and ToGPU transfers whose buffer is never
     consumed afterwards (dead transfer);
   - kernel calls ([check_host]): argument arity against the Lift
     lambda, and scalar/buffer kind mismatches per parameter;
   - sharded plans ([check_sharded], over [Vgpu.Multi.plan]): a Z-cut
     stepped again without a halo exchange between the adjacent devices
     in the previous step — the bug class the paper's ghost-plane
     protocol exists to prevent. *)

type severity =
  | Error
  | Warning

type issue = {
  severity : severity;
  code : string;  (* stable machine-readable tag *)
  message : string;
}

let issue severity code fmt = Printf.ksprintf (fun message -> { severity; code; message }) fmt
let errors issues = List.filter (fun i -> i.severity = Error) issues

let pp_issue ppf i =
  Fmt.pf ppf "%s [%s] %s"
    (match i.severity with Error -> "error:" | Warning -> "warning:")
    i.code i.message

(* -- Single-device host programs -------------------------------------- *)

(* Approximate denotation of a host expression, mirroring
   [Host.compile_hexpr] without generating code. *)
type hkind =
  | K_scalar
  | K_buf of string
  | K_out  (* a kernel's freshly allocated (device-resident) output *)
  | K_tuple

type hstate = {
  mutable issues : issue list;  (* reversed *)
  on_device : (string, unit) Hashtbl.t;
  pending_to_gpu : (string, unit) Hashtbl.t;  (* transferred, not yet consumed *)
  signaled : (string, unit) Hashtbl.t;  (* events signaled so far *)
  venv : (int, hkind) Hashtbl.t;
}

let report st i = st.issues <- i :: st.issues

let consume st name =
  Hashtbl.remove st.pending_to_gpu name;
  Hashtbl.mem st.on_device name

let require_on_device st ~what name =
  if not (consume st name) then
    report st
      (issue Error "use-before-togpu" "%s uses buffer %s before any ToGPU transfer" what name)

let rec lint_hexpr st (e : Host.hexpr) : hkind =
  match e with
  | H_int _ | H_real _ -> K_scalar
  | H_input p -> (
      match Hashtbl.find_opt st.venv p.Ast.p_id with
      | Some k -> k
      | None -> if Ty.is_scalar p.Ast.p_ty then K_scalar else K_buf p.Ast.p_name)
  | H_to_gpu e -> (
      match lint_hexpr st e with
      | K_buf name ->
          if Hashtbl.mem st.pending_to_gpu name then
            report st
              (issue Warning "dead-transfer" "buffer %s is transferred to the GPU twice with no use in between" name);
          Hashtbl.replace st.on_device name ();
          Hashtbl.replace st.pending_to_gpu name ();
          K_buf name
      | k -> k)
  | H_to_host e -> (
      match lint_hexpr st e with
      | K_buf name ->
          if not (Hashtbl.mem st.on_device name) then
            report st
              (issue Warning "dead-transfer" "buffer %s is read back without ever living on the GPU" name);
          K_buf name
      | k -> k)
  | H_let (p, v, b) ->
      let k = lint_hexpr st v in
      Hashtbl.replace st.venv p.Ast.p_id k;
      lint_hexpr st b
  | H_tuple es ->
      List.iter (fun e -> ignore (lint_hexpr st e)) es;
      K_tuple
  | H_copy { src; dst; _ } -> (
      let sk = lint_hexpr st src in
      let dk = lint_hexpr st dst in
      (match sk with
      | K_buf name -> require_on_device st ~what:"a device copy" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "copy source is not a buffer"));
      (match dk with
      | K_buf name -> require_on_device st ~what:"a device copy" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "copy destination is not a buffer"));
      dk)
  | H_write_to (t, v) -> (
      let tk = lint_hexpr st t in
      (match tk with
      | K_buf name -> require_on_device st ~what:"WriteTo" name
      | K_out -> ()
      | K_scalar | K_tuple ->
          report st (issue Error "kind-mismatch" "WriteTo target is not a buffer"));
      let _ = lint_hexpr st v in
      match tk with K_buf _ | K_out -> tk | _ -> K_out)
  | H_event (name, e) ->
      let k = lint_hexpr st e in
      if Hashtbl.mem st.signaled name then
        report st (issue Error "duplicate-event" "event %s is signaled twice" name)
      else Hashtbl.replace st.signaled name ();
      k
  | H_wait (names, e) ->
      List.iter
        (fun n ->
          if not (Hashtbl.mem st.signaled n) then
            report st
              (issue Error "wait-unsignaled"
                 "wait on event %s, which no earlier enqueue signals" n))
        names;
      lint_hexpr st e
  | H_kernel { k_name; f; args } ->
      let params = f.Ast.l_params in
      if List.length args <> List.length params then begin
        report st
          (issue Error "arity-mismatch" "kernel %s expects %d arguments, got %d" k_name
             (List.length params) (List.length args));
        List.iter (fun a -> ignore (lint_hexpr st a)) args
      end
      else
        List.iter2
          (fun (p : Ast.param) a ->
            let k = lint_hexpr st a in
            let want_scalar = Ty.is_scalar p.Ast.p_ty in
            match (k, want_scalar) with
            | K_scalar, true -> ()
            | (K_buf _ | K_out), false -> (
                match k with
                | K_buf name ->
                    require_on_device st ~what:(Printf.sprintf "kernel %s" k_name) name
                | _ -> ())
            | K_scalar, false ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: scalar passed for buffer parameter %s"
                     k_name p.Ast.p_name)
            | (K_buf _ | K_out), true ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: buffer passed for scalar parameter %s"
                     k_name p.Ast.p_name)
            | K_tuple, _ ->
                report st
                  (issue Error "kind-mismatch" "kernel %s: tuple passed for parameter %s" k_name
                     p.Ast.p_name))
          params args;
      K_out

let check_host (e : Host.hexpr) : issue list =
  let st =
    {
      issues = [];
      on_device = Hashtbl.create 8;
      pending_to_gpu = Hashtbl.create 8;
      signaled = Hashtbl.create 8;
      venv = Hashtbl.create 8;
    }
  in
  ignore (lint_hexpr st e);
  Hashtbl.iter
    (fun name () ->
      report st
        (issue Warning "dead-transfer" "buffer %s is transferred to the GPU but never used" name))
    st.pending_to_gpu;
  List.rev st.issues

(* -- Sharded multi-device plans --------------------------------------- *)

(* A sharded time step ends with the per-device buffer rotation (Swap
   ops).  Between two consecutive steps that both launch kernels on
   devices i and i+1, the freshly written ghost planes must have been
   exchanged across that Z-cut — otherwise step k+1 consumes stale halo
   data.  We segment the plan at Swap boundaries and check every
   adjacent launching pair for an exchange in the earlier segment. *)
(* [tblock] is the temporal block depth: with depth-T ghost zones a cut
   legitimately goes T consecutive steps between exchanges, so the
   missing-exchange error fires only when a pair of adjacent devices
   launches in more than [tblock] consecutive segments with no exchange
   across their cut. *)
let check_sharded ?(tblock = 1) (plan : Vgpu.Multi.plan) : issue list =
  (* split into segments: a run of non-Swap ops terminated by Swaps *)
  let segments = ref [] and current = ref [] and saw_swap = ref false in
  let flush () =
    if !current <> [] || !saw_swap then begin
      segments := List.rev !current :: !segments;
      current := [];
      saw_swap := false
    end
  in
  List.iter
    (fun (op : Vgpu.Multi.op) ->
      match op with
      | Vgpu.Multi.Dev (_, Vgpu.Runtime.Swap _) -> saw_swap := true
      | op ->
          if !saw_swap then flush ();
          current := op :: !current)
    plan;
  flush ();
  let segments = List.rev !segments in
  let launching seg =
    List.filter_map
      (function Vgpu.Multi.Dev (i, Vgpu.Runtime.Launch _) -> Some i | _ -> None)
      seg
    |> List.sort_uniq compare
  in
  let exchanged_pairs seg =
    List.filter_map
      (function
        | Vgpu.Multi.Exchange { src_dev; dst_dev; _ } ->
            Some (min src_dev dst_dev, max src_dev dst_dev)
        | _ -> None)
      seg
    |> List.sort_uniq compare
  in
  let issues = ref [] in
  (* per adjacent pair: launching segments since the last exchange *)
  let since : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun seg ->
      let l = launching seg in
      let ex = exchanged_pairs seg in
      List.iter
        (fun i ->
          if List.mem i l && List.mem (i + 1) l then begin
            let n = Option.value ~default:0 (Hashtbl.find_opt since i) in
            if n >= tblock then
              issues :=
                issue Error "missing-halo-exchange"
                  "devices %d and %d step again without a halo exchange across their Z-cut" i
                  (i + 1)
                :: !issues;
            Hashtbl.replace since i (n + 1)
          end)
        l;
      (* an exchange covers the boundary to the next segment, whether or
         not this segment launched *)
      List.iter (fun (i, _) -> Hashtbl.replace since i 0) ex)
    segments;
  List.rev !issues

(* -- Asynchronous (overlapped) multi-device plans --------------------- *)

(* Event-ordered async plans drop the per-step barrier of [check_sharded]'s
   world: ordering is per-queue FIFO plus explicit signal->wait edges.
   The checks:

   - wait/signal well-formedness: a wait must name an imported event or
     one signaled by an earlier op; an event may be signaled once;
   - halo-producer ordering: an Exchange must happen after some earlier
     launch on its source device that references the source buffer (the
     plane it copies must already be written);
   - halo-consumer ordering: among the *later* launches on the
     destination device that reference the exchanged buffer, at least
     one must be ordered after the exchange — the frontier launch whose
     wait the overlapped schedule exists to carry.  No ordered consumer
     means the next step can read a stale ghost plane: exactly the race
     a dropped [a_waits] introduces.  (Interior launches are legitimately
     concurrent with the exchange, so the rule demands one ordered
     consumer, not all.)

   Buffer identities are tracked through per-device [Swap] rotation
   markers (see [Gpu_sim.overlap_plan]), so "the exchanged buffer" stays
   meaningful across time steps.  Happens-before is computed on whole
   ops: FIFO chains ops sharing a queue (an Exchange queues on its
   source device), signal->wait edges bridge queues. *)

(* Event ids are allocated monotonically across submissions
   ([Gpu_sim.overlap_plan] keeps numbering across steps), so the waits a
   plan can legitimately import from earlier submissions are exactly the
   waited ids below everything the plan itself signals. *)
let default_imports (plan : Vgpu.Multi.async_plan) =
  let min_signaled =
    List.fold_left
      (fun acc (o : Vgpu.Multi.async_op) ->
        match o.Vgpu.Multi.a_signal with Some e -> min acc e | None -> acc)
      max_int plan
  in
  List.concat_map
    (fun (o : Vgpu.Multi.async_op) ->
      List.filter (fun e -> e < min_signaled) o.Vgpu.Multi.a_waits)
    plan
  |> List.sort_uniq compare

(* FIFO + signal->wait order of an async plan: [reach i] marks every op
   strictly ordered after op [i] (memoized per source op). *)
let async_order (ops : Vgpu.Multi.async_op array) =
  let n = Array.length ops in
  let queue_of (o : Vgpu.Multi.async_op) =
    match o.Vgpu.Multi.a_op with
    | Vgpu.Multi.Dev (i, _) -> i
    | Vgpu.Multi.Exchange { src_dev; _ } -> src_dev
  in
  let next_on_queue = Array.make n (-1) in
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i o ->
      let q = queue_of o in
      (match Hashtbl.find_opt last q with
      | Some j -> next_on_queue.(j) <- i
      | None -> ());
      Hashtbl.replace last q i)
    ops;
  let waiters : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      List.iter
        (fun e ->
          Hashtbl.replace waiters e (i :: Option.value ~default:[] (Hashtbl.find_opt waiters e)))
        o.Vgpu.Multi.a_waits)
    ops;
  let memo : (int, bool array) Hashtbl.t = Hashtbl.create 64 in
  fun from ->
    match Hashtbl.find_opt memo from with
    | Some seen -> seen
    | None ->
        let seen = Array.make n false in
        let rec go i =
          if i >= 0 && i < n && not seen.(i) then begin
            seen.(i) <- true;
            go next_on_queue.(i);
            match ops.(i).Vgpu.Multi.a_signal with
            | Some e -> List.iter go (Option.value ~default:[] (Hashtbl.find_opt waiters e))
            | None -> ()
          end
        in
        (* successors of [from] only, not [from] itself *)
        (match ops.(from).Vgpu.Multi.a_signal with
        | Some e -> List.iter go (Option.value ~default:[] (Hashtbl.find_opt waiters e))
        | None -> ());
        go next_on_queue.(from);
        Hashtbl.replace memo from seen;
        seen

let check_async ?imports (plan : Vgpu.Multi.async_plan) : issue list =
  let imports = match imports with Some l -> l | None -> default_imports plan in
  let ops = Array.of_list plan in
  let n = Array.length ops in
  let issues = ref [] in
  let add i = issues := i :: !issues in
  (* signal/wait well-formedness *)
  let signal_idx : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      match o.Vgpu.Multi.a_signal with
      | Some e ->
          if Hashtbl.mem signal_idx e then
            add (issue Error "duplicate-event" "async op %d: event %d is signaled twice" i e)
          else Hashtbl.replace signal_idx e i
      | None -> ())
    ops;
  Array.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      List.iter
        (fun e ->
          if not (List.mem e imports) then
            match Hashtbl.find_opt signal_idx e with
            | Some j when j < i -> ()
            | _ ->
                add
                  (issue Error "wait-unsignaled"
                     "async op %d waits on event %d, which no earlier op signals (and is not imported)"
                     i e))
        o.Vgpu.Multi.a_waits)
    ops;
  (* buffer identity through rotation Swaps: per (device, name) -> the
     physical buffer currently bound to that name *)
  let phys : (int * string, string) Hashtbl.t = Hashtbl.create 64 in
  let resolve d name = Option.value ~default:name (Hashtbl.find_opt phys (d, name)) in
  (* per-op resolved references, in plan order *)
  let launch_refs = Array.make n None in (* (device, phys names) for launches *)
  let exch = Array.make n None in (* (src_dev, src_phys, dst_dev, dst_phys) *)
  Array.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      match o.Vgpu.Multi.a_op with
      | Vgpu.Multi.Dev (d, Vgpu.Runtime.Swap (a, b)) ->
          let pa = resolve d a and pb = resolve d b in
          Hashtbl.replace phys (d, a) pb;
          Hashtbl.replace phys (d, b) pa
      | Vgpu.Multi.Dev (d, Vgpu.Runtime.Launch { kernel; args; _ }) ->
          let names =
            List.filter_map
              (function Vgpu.Runtime.A_buf b -> Some (resolve d b) | _ -> None)
              args
          in
          ignore kernel;
          launch_refs.(i) <- Some (d, names)
      | Vgpu.Multi.Dev (_, _) -> ()
      | Vgpu.Multi.Exchange { src_dev; src; dst_dev; dst; _ } ->
          exch.(i) <- Some (src_dev, resolve src_dev src, dst_dev, resolve dst_dev dst))
    ops;
  (* happens-before: successor edges are next-op-on-same-queue (FIFO) and
     signal->wait; [reach from] marks every op ordered after [from] *)
  let reach = async_order ops in
  Array.iteri
    (fun x o ->
      match exch.(x) with
      | None -> ()
      | Some (src_dev, src_phys, dst_dev, dst_phys) ->
          ignore o;
          let after = reach x in
          (* producer: some earlier src-device launch touching the source
             buffer must be ordered before the exchange *)
          let producers = ref [] and ordered_producer = ref false in
          for l = 0 to x - 1 do
            match launch_refs.(l) with
            | Some (d, names) when d = src_dev && List.mem src_phys names ->
                producers := l :: !producers;
                (* hb(l, x): x reachable from l *)
                if (reach l).(x) then ordered_producer := true
            | _ -> ()
          done;
          if !producers <> [] && not !ordered_producer then
            add
              (issue Error "unordered-halo-producer"
                 "async op %d: exchange of %s from device %d is not ordered after any launch writing it"
                 x src_phys src_dev);
          (* consumer: among later dst-device launches touching the
             exchanged buffer, at least one must wait (transitively) on
             the exchange *)
          let consumers = ref [] and ordered_consumer = ref false in
          for l = x + 1 to n - 1 do
            match launch_refs.(l) with
            | Some (d, names) when d = dst_dev && List.mem dst_phys names ->
                consumers := l :: !consumers;
                if after.(l) then ordered_consumer := true
            | _ -> ()
          done;
          if !consumers <> [] && not !ordered_consumer then
            add
              (issue Error "unordered-halo-consumer"
                 "async op %d: exchange of %s into device %d has no later launch ordered after it — a dropped frontier wait would read a stale ghost plane"
                 x dst_phys dst_dev))
    ops;
  List.rev !issues

(* -- Whole-plan dataflow verification (footprint-driven) --------------- *)

(* The checks above are structural: they prove ordering between named
   ops.  The flow verifier below is semantic: it walks a plan's launches
   with the statically inferred stencil footprint of each kernel
   ([Kernel_ast.Footprint]) and proves, per ghost plane, that

   - every halo exchange is at least as wide as the consuming kernel's
     inferred read radius (halo-too-narrow);
   - no launch reads a ghost plane whose source frontier was rewritten
     after the exchange that filled it (stale-halo), or whose planes the
     device itself overwrote after the fill (clobbered-halo);
   - in async plans, a ghost-reading launch is happens-before-ordered
     after the exchange that filled the ghost (unordered-ghost-read) —
     the precise form of the dropped-frontier-wait race;
   - no kernel reads a buffer that was allocated in the plan but never
     written or uploaded (uninit-read).

   Kernel footprints come straight from the launch ops: a [Launch]
   carries its kernel AST and resolved arguments, which give the
   parameter environment (concrete [goff]/[count] for interior/frontier
   range launches) under which [Footprint.infer] runs.  Plane ranges are
   derived from the inferred absolute linear index interval, clamped to
   the device's slab, so flat 1D, 3D and padded 2.5D-tiled launches are
   all classified by the same arithmetic. *)

type slab = {
  sl_nx : int;
  sl_ny : int;
  sl_planes : int array;  (* planes per device, ghost planes included *)
}

(* A ghost zone's state carries *validity*, not just the fill width:
   under temporal blocking the in-block launches legitimately rewrite
   ghost planes from progressively staler inputs (redundant frontier
   recompute), so the number of cut-adjacent planes still holding
   correct data decays by the read radius at every recompute and is
   restored only by the next deep exchange.  [g_valid] is that live
   count; [g_fill] is the width of the originating exchange propagated
   through the aging chain, so a too-shallow exchange can be diagnosed
   with the width it *should* have had ([g_fill] + radius - [g_valid]). *)
type ghost = {
  g_op : int;  (* index of the op that last determined the ghost; -1 = host-seeded *)
  g_fill : int;  (* width of the originating exchange (diagnostic) *)
  g_valid : int;  (* cut-adjacent planes currently holding correct data *)
  g_clobbered : bool;  (* validity lost to a plain overwrite, not decay *)
  g_exch : int;  (* originating exchange op, carried through the aging
                    chain; -1 if no exchange backs this ghost's data *)
  g_src : int * string;  (* source device, physical buffer *)
  g_src_lo : int;
  g_src_hi : int;  (* source plane range backing the ghost; empty once recomputed locally *)
}

type flow = {
  fslab : slab;
  plane : int;
  ndev : int;
  fhalo_w : int;  (* ghost planes per side (the temporal block depth T) *)
  fissues : issue list ref;
  fphys : (int * string, string) Hashtbl.t;
  fwrites : (int * string, (int * int * int) list ref) Hashtbl.t;
      (* (device, phys) -> (op index, plane lo, plane hi) writes *)
  fghosts : (int * string * [ `Lo | `Hi ], ghost) Hashtbl.t;
  funinit : (int * string, unit) Hashtbl.t;
  fwarned : (string, unit) Hashtbl.t;
  fhalo : (string, unit) Hashtbl.t;
      (* buffer names under the halo protocol: exchange endpoints and
         their closure under the Swap rotation.  Ghost-plane checks
         apply only to these — other buffers (boundary tables, branch
         state) are replicated or shard-local, not slab-shaped. *)
  fstate : (string, unit) Hashtbl.t;
      (* branch-state buffers: exchanged at block boundaries but not
         slab-shaped, so they are excluded from the ghost-plane model *)
}

let make_flow ?(halo = 1) ?(state_bufs = []) (slab : slab) =
  let fstate = Hashtbl.create 4 in
  List.iter (fun b -> Hashtbl.replace fstate b ()) state_bufs;
  {
    fslab = slab;
    plane = slab.sl_nx * slab.sl_ny;
    ndev = Array.length slab.sl_planes;
    fhalo_w = max 1 halo;
    fissues = ref [];
    fphys = Hashtbl.create 16;
    fwrites = Hashtbl.create 16;
    fghosts = Hashtbl.create 16;
    funinit = Hashtbl.create 8;
    fwarned = Hashtbl.create 8;
    fhalo = Hashtbl.create 8;
    fstate;
  }

(* Seed [fhalo] with the exchange endpoints, closed under Swap pairs. *)
let fl_seed_halo fl (raw_ops : Vgpu.Multi.op list) =
  let swaps = ref [] in
  List.iter
    (fun (op : Vgpu.Multi.op) ->
      match op with
      | Vgpu.Multi.Exchange { src; dst; _ } ->
          if not (Hashtbl.mem fl.fstate src || Hashtbl.mem fl.fstate dst) then begin
            Hashtbl.replace fl.fhalo src ();
            Hashtbl.replace fl.fhalo dst ()
          end
      | Vgpu.Multi.Dev (_, Vgpu.Runtime.Swap (a, b)) -> swaps := (a, b) :: !swaps
      | Vgpu.Multi.Dev _ -> ())
    raw_ops;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a, b) ->
        let ma = Hashtbl.mem fl.fhalo a and mb = Hashtbl.mem fl.fhalo b in
        if ma <> mb then begin
          Hashtbl.replace fl.fhalo a ();
          Hashtbl.replace fl.fhalo b ();
          changed := true
        end)
      !swaps
  done

let fl_add fl i = fl.fissues := i :: !(fl.fissues)

let fl_warn_once fl key i =
  if not (Hashtbl.mem fl.fwarned key) then begin
    Hashtbl.replace fl.fwarned key ();
    fl_add fl i
  end

let fl_resolve fl d name = Option.value ~default:name (Hashtbl.find_opt fl.fphys (d, name))

let fl_writes fl d p =
  match Hashtbl.find_opt fl.fwrites (d, p) with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace fl.fwrites (d, p) r;
      r

(* Ghost state defaults to host-seeded: the simulation scatters state
   with coherent depth-[halo] ghosts before the first step. *)
let fl_ghost fl d p side =
  match Hashtbl.find_opt fl.fghosts (d, p, side) with
  | Some g -> g
  | None ->
      let h = fl.fhalo_w in
      let g =
        match side with
        | `Lo ->
            let sp = fl.fslab.sl_planes.(d - 1) in
            { g_op = -1; g_fill = h; g_valid = h; g_clobbered = false; g_exch = -1;
              g_src = (d - 1, p); g_src_lo = sp - (2 * h); g_src_hi = sp - h - 1 }
        | `Hi ->
            { g_op = -1; g_fill = h; g_valid = h; g_clobbered = false; g_exch = -1;
              g_src = (d + 1, p); g_src_lo = h; g_src_hi = (2 * h) - 1 }
      in
      Hashtbl.replace fl.fghosts (d, p, side) g;
      g

(* Age (or clobber) one side's ghost of a written buffer.  The write
   covers plane range [wrange] ([None] = data-dependent scatter that may
   touch any site) and confers validity [c] on the planes it rewrites
   (planes correct to depth < c from the cut); untouched planes keep the
   old entry's correctness.  The new validity is the longest correct
   prefix from the cut outward. *)
let fl_age_side fl d p side ~op ~wrange ~c ~cf ~cexch ~clobbering =
  let h = fl.fhalo_w in
  let planes_d = fl.fslab.sl_planes.(d) in
  let g_old = fl_ghost fl d p side in
  let depth_of plane =
    match side with `Lo -> h - 1 - plane | `Hi -> plane - (planes_d - h)
  in
  let dint =
    match wrange with
    | None -> Some (0, h - 1)
    | Some (wl, wh) ->
        let gl, gh =
          match side with
          | `Lo -> (max wl 0, min wh (h - 1))
          | `Hi -> (max wl (planes_d - h), min wh (planes_d - 1))
        in
        if gl > gh then None
        else
          let a = depth_of gl and b = depth_of gh in
          Some (min a b, max a b)
  in
  match dint with
  | None -> ()  (* the write stays clear of this side's ghost zone *)
  | Some (dlo, dhi) ->
      let sparse = wrange = None in
      let v = ref 0 and broke_on_write = ref false and stop = ref false in
      for k = 0 to h - 1 do
        if not !stop then begin
          let written = dlo <= k && k <= dhi in
          let ok =
            if written then
              if sparse then k < c && k < g_old.g_valid else k < c
            else k < g_old.g_valid
          in
          if ok then incr v
          else begin
            stop := true;
            broke_on_write := written && not (k < c)
          end
        end
      done;
      let fresh = !broke_on_write || not !stop in
      let fill = if fresh then cf else g_old.g_fill in
      Hashtbl.replace fl.fghosts (d, p, side)
        {
          g_op = op;
          g_fill = fill;
          g_exch = (if fresh then cexch else g_old.g_exch);
          g_valid = !v;
          g_clobbered = (if !broke_on_write then clobbering else g_old.g_clobbered);
          g_src = (d, p);
          g_src_lo = 1;
          g_src_hi = 0;  (* locally recomputed: no remote frontier backs it *)
        }

let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* Plane range touched by a linear index interval, clamped to the
   device's slab (padded NDRanges overshoot; their guards keep execution
   inside). *)
let z_range fl d (lin : Kernel_ast.Domain.itv) =
  match (lin.Kernel_ast.Domain.lo, lin.Kernel_ast.Domain.hi) with
  | Some lo, Some hi ->
      Some
        ( max 0 (floor_div lo fl.plane),
          min (fl.fslab.sl_planes.(d) - 1) (floor_div hi fl.plane) )
  | _ -> None

(* Parameter environment and role->runtime-buffer binding of a launch. *)
let launch_env (k : Kernel_ast.Cast.kernel) (args : Vgpu.Runtime.arg list) ~global =
  let scalars : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let roles = ref [] in
  (try
     List.iter2
       (fun (p : Kernel_ast.Cast.param) (a : Vgpu.Runtime.arg) ->
         match (p.Kernel_ast.Cast.p_kind, a) with
         | Kernel_ast.Cast.Scalar_param, Vgpu.Runtime.A_int n ->
             Hashtbl.replace scalars p.Kernel_ast.Cast.p_name n
         | Kernel_ast.Cast.Global_buf, Vgpu.Runtime.A_buf rn ->
             roles := (p.Kernel_ast.Cast.p_name, rn) :: !roles
         | _ -> ())
       k.Kernel_ast.Cast.params args
   with Invalid_argument _ -> ());
  ( Kernel_ast.Check.env ~param_value:(fun v -> Hashtbl.find_opt scalars v) ~global (),
    List.rev !roles )

let flow_launch fl ~async ~hb i d (kernel : Kernel_ast.Cast.kernel) args global =
  let open Kernel_ast in
  let env, roles = launch_env kernel args ~global in
  (* degenerate slabs (nx or ny of 1) collapse the axis strides; fall
     back to the linear layout — axis extents are lost but absolute
     intervals (and so the uninit/ghost z-ranges) survive *)
  let strides =
    if fl.fslab.sl_nx > 1 && fl.fslab.sl_ny > 1 then [| 1; fl.fslab.sl_nx; fl.plane |]
    else [| 1 |]
  in
  let fp = Footprint.infer ~strides env kernel in
  let planes_d = fl.fslab.sl_planes.(d) in
  let h = fl.fhalo_w in
  let side_exists = function `Lo -> d > 0 | `Hi -> d < fl.ndev - 1 in
  let reaches side (zl, zh) =
    match side with `Lo -> zl <= h - 1 | `Hi -> zh >= planes_d - h
  in
  (* Pass 1 over the roles: check every halo-protocol read against the
     ghost validity as it stands *before* this launch, and collect the
     read provenance (buffer, radius, range) the write pass ages with. *)
  let halo_reads = ref [] in
  List.iter
    (fun (role, rn) ->
      let p = fl_resolve fl d rn in
      match Footprint.find fp role with
      | None -> ()
      | Some fb ->
          if fb.Footprint.fb_read.Footprint.s_sites > 0 then begin
            if Hashtbl.mem fl.funinit (d, p) then
              fl_add fl
                (issue Error "uninit-read"
                   "op %d: kernel %s reads %s (device %d), which is allocated but never written or uploaded"
                   i kernel.Cast.name p d);
            if Hashtbl.mem fl.fhalo rn || Hashtbl.mem fl.fhalo p then begin
              let radius = Footprint.read_radius fp role in
              let zr = z_range fl d fb.Footprint.fb_read.Footprint.s_lin in
              halo_reads := (role, p, radius, zr) :: !halo_reads;
              match (radius, zr) with
              | Some radius, Some zrange ->
                  let check_side side =
                    let side_name = match side with `Lo -> "low" | `Hi -> "high" in
                    let g = fl_ghost fl d p side in
                    let sd, sp = g.g_src in
                    if
                      g.g_src_hi >= g.g_src_lo
                      && List.exists
                           (fun (wop, wl, wh) ->
                             wop > g.g_op && wop < i && wl <= g.g_src_hi
                             && wh >= g.g_src_lo)
                           !(fl_writes fl sd sp)
                    then
                      fl_add fl
                        (issue Error "stale-halo"
                           "op %d: kernel %s reads the %s ghost of %s on device %d, but device %d rewrote the source frontier after the exchange that filled it"
                           i kernel.Cast.name side_name p d sd)
                    else if g.g_valid < radius then
                      if g.g_clobbered then
                        fl_add fl
                          (issue Error "clobbered-halo"
                             "op %d: kernel %s reads the %s ghost of %s on device %d, which a launch on the same device overwrote after the exchange"
                             i kernel.Cast.name side_name p d)
                      else if
                        (* validity ran out and no exchange ever backed this
                           ghost's aging chain: if the neighbour meanwhile
                           rewrote the frontier an exchange would have copied,
                           the exchange is missing, not merely too shallow *)
                        g.g_exch < 0
                        &&
                        let nd = match side with `Lo -> d - 1 | `Hi -> d + 1 in
                        let fr_lo, fr_hi =
                          match side with
                          | `Lo ->
                              let sp = fl.fslab.sl_planes.(nd) in
                              (sp - (2 * h), sp - h - 1)
                          | `Hi -> (h, (2 * h) - 1)
                        in
                        List.exists
                          (fun (wop, wl, wh) -> wop < i && wl <= fr_hi && wh >= fr_lo)
                          !(fl_writes fl nd p)
                      then
                        fl_add fl
                          (issue Error "stale-halo"
                             "op %d: kernel %s reads the %s ghost of %s on device %d, but device %d rewrote the source frontier after the exchange that filled it"
                             i kernel.Cast.name side_name p d
                             (match side with `Lo -> d - 1 | `Hi -> d + 1))
                      else begin
                        let fill =
                          if g.g_op >= 0 then
                            Printf.sprintf "the exchange at op %d filled only %d" g.g_op
                              g.g_valid
                          else
                            Printf.sprintf "the host-seeded ghost holds only %d" g.g_valid
                        in
                        fl_add fl
                          (issue Error "halo-too-narrow"
                             "op %d: kernel %s on device %d reads %d plane(s) of %s across the %s z-cut, but %s — widen the exchange to %d plane(s)"
                             i kernel.Cast.name d radius p side_name fill
                             (g.g_fill + radius - g.g_valid))
                      end;
                    if async && g.g_op >= 0 && not (hb g.g_op i) then
                      fl_add fl
                        (issue Error "unordered-ghost-read"
                           "op %d: kernel %s reads the %s ghost of %s on device %d but is not ordered after the exchange at op %d that fills it — a dropped frontier wait"
                           i kernel.Cast.name side_name p d g.g_op)
                  in
                  if radius > 0 then begin
                    if side_exists `Lo && reaches `Lo zrange then check_side `Lo;
                    if side_exists `Hi && reaches `Hi zrange then check_side `Hi
                  end
              | _ ->
                  if fl.ndev > 1 then
                    fl_warn_once fl
                      (kernel.Cast.name ^ "/" ^ role)
                      (issue Warning "halo-unverified"
                         "kernel %s: reads of %s are data-dependent; halo coverage is left to the runtime sanitizer"
                         kernel.Cast.name role)
            end
          end)
    roles;
  (* Pass 2: writes.  A write into a ghost zone by a launch is the
     in-block redundant recompute: the validity it confers is what its
     deepest-decayed input supports (min over halo reads of validity
     minus read radius); a launch reading no halo buffer writes
     input-independent (fully valid) data. *)
  let confer side =
    List.fold_left
      (fun (c, cf, ce) (_, bp, radius, zr) ->
        let applies = match zr with Some r -> reaches side r | None -> true in
        if not applies then (c, cf, ce)
        else
          let r = Option.value ~default:0 radius in
          let g = fl_ghost fl d bp side in
          let v = g.g_valid - r in
          if v < c then (v, g.g_fill, g.g_exch) else (c, cf, ce))
      (h, h, -1) !halo_reads
  in
  List.iter
    (fun (role, rn) ->
      let p = fl_resolve fl d rn in
      match Footprint.find fp role with
      | None -> ()
      | Some fb ->
          if fb.Footprint.fb_write.Footprint.s_sites > 0 then begin
            Hashtbl.remove fl.funinit (d, p);
            let zr = z_range fl d fb.Footprint.fb_write.Footprint.s_lin in
            let zl, zh = match zr with Some r -> r | None -> (0, planes_d - 1) in
            let r = fl_writes fl d p in
            r := (i, zl, zh) :: !r;
            if Hashtbl.mem fl.fhalo rn || Hashtbl.mem fl.fhalo p then
              List.iter
                (fun side ->
                  if side_exists side then begin
                    let c, cf, ce = confer side in
                    fl_age_side fl d p side ~op:i ~wrange:zr ~c:(max 0 c) ~cf
                      ~cexch:ce ~clobbering:false
                  end)
                [ `Lo; `Hi ]
          end)
    roles

let flow_exchange fl i ~src_dev ~src ~src_off ~dst_dev ~dst ~dst_off ~elems =
  let sp = fl_resolve fl src_dev src and dp = fl_resolve fl dst_dev dst in
  if Hashtbl.mem fl.funinit (src_dev, sp) then
    fl_add fl
      (issue Error "uninit-read" "op %d: exchange reads %s on device %d before it is written" i
         sp src_dev);
  if Hashtbl.mem fl.fstate src || Hashtbl.mem fl.fstate dst then
    (* branch-state refresh: not slab-shaped, outside the ghost model *)
    Hashtbl.remove fl.funinit (dst_dev, dp)
  else begin
    if elems mod fl.plane <> 0 then
      fl_add fl
        (issue Warning "exchange-partial-plane"
           "op %d: exchange of %d elems is not a whole number of %d-element planes" i elems
           fl.plane);
    let h = fl.fhalo_w in
    let w = elems / fl.plane in
    let we = max w 1 in
    let d0 = dst_off / fl.plane in
    let planes_dst = fl.fslab.sl_planes.(dst_dev) in
    (* A ghost fill must end at the cut-adjacent plane: [w] planes up to
       depth 0.  A shallower-than-halo fill starts inside the ghost zone
       ([d0] > 0 on the low side), which is why classification is by the
       covered range, not by offset zero. *)
    let side =
      if d0 >= 0 && d0 + we - 1 = h - 1 then Some `Lo
      else if d0 = planes_dst - h then Some `Hi
      else None
    in
    match side with
    | Some side ->
        let expect_src = match side with `Lo -> dst_dev - 1 | `Hi -> dst_dev + 1 in
        if src_dev <> expect_src then
          fl_add fl
            (issue Error "exchange-wrong-source"
               "op %d: %s ghost of device %d filled from device %d, expected neighbour %d" i
               (match side with `Lo -> "low" | `Hi -> "high")
               dst_dev src_dev expect_src)
        else
          let src_lo = src_off / fl.plane in
          Hashtbl.replace fl.fghosts (dst_dev, dp, side)
            { g_op = i; g_fill = w; g_valid = w; g_clobbered = false; g_exch = i;
              g_src = (src_dev, sp); g_src_lo = src_lo; g_src_hi = src_lo + we - 1 }
    | None ->
        (* a general inter-device copy: a plain write into the target *)
        let wl = d0 and wh = (dst_off + max 0 (elems - 1)) / fl.plane in
        let r = fl_writes fl dst_dev dp in
        r := (i, wl, wh) :: !r;
        if Hashtbl.mem fl.fhalo dst || Hashtbl.mem fl.fhalo dp then
          List.iter
            (fun side ->
              let ok = match side with `Lo -> dst_dev > 0 | `Hi -> dst_dev < fl.ndev - 1 in
              if ok then
                fl_age_side fl dst_dev dp side ~op:i ~wrange:(Some (wl, wh)) ~c:0 ~cf:0
                  ~cexch:(-1) ~clobbering:true)
            [ `Lo; `Hi ]
  end

let flow_dev_op fl ~async ~hb i d (op : Vgpu.Runtime.op) =
  match op with
  | Vgpu.Runtime.Swap (a, b) ->
      let pa = fl_resolve fl d a and pb = fl_resolve fl d b in
      Hashtbl.replace fl.fphys (d, a) pb;
      Hashtbl.replace fl.fphys (d, b) pa
  | Vgpu.Runtime.Alloc { name; _ } -> Hashtbl.replace fl.funinit (d, fl_resolve fl d name) ()
  | Vgpu.Runtime.Copy_to_gpu name -> Hashtbl.remove fl.funinit (d, fl_resolve fl d name)
  | Vgpu.Runtime.Copy_to_host name ->
      let p = fl_resolve fl d name in
      if Hashtbl.mem fl.funinit (d, p) then
        fl_add fl
          (issue Error "uninit-read"
             "op %d: readback of %s on device %d before it is written" i p d)
  | Vgpu.Runtime.Copy_buffer { src; dst; dst_off; elems; _ } ->
      let sp = fl_resolve fl d src and dp = fl_resolve fl d dst in
      if Hashtbl.mem fl.funinit (d, sp) then
        fl_add fl
          (issue Error "uninit-read"
             "op %d: device copy reads %s on device %d before it is written" i sp d);
      Hashtbl.remove fl.funinit (d, dp);
      let wl = dst_off / fl.plane and wh = (dst_off + max 0 (elems - 1)) / fl.plane in
      let r = fl_writes fl d dp in
      r := (i, wl, wh) :: !r;
      if Hashtbl.mem fl.fhalo dst || Hashtbl.mem fl.fhalo dp then
        List.iter
          (fun side ->
            let ok = match side with `Lo -> d > 0 | `Hi -> d < fl.ndev - 1 in
            if ok then
              fl_age_side fl d dp side ~op:i ~wrange:(Some (wl, wh)) ~c:0 ~cf:0
                ~cexch:(-1) ~clobbering:true)
          [ `Lo; `Hi ]
  | Vgpu.Runtime.Launch { kernel; args; global } ->
      flow_launch fl ~async ~hb i d kernel args global

let verify_plan ?halo ?state_bufs (slab : slab) (plan : Vgpu.Multi.plan) : issue list =
  let fl = make_flow ?halo ?state_bufs slab in
  fl_seed_halo fl plan;
  (* [Multi.run] executes ops in list order: submission order is
     execution order, so happens-before is the total order *)
  let hb a b = a < b in
  List.iteri
    (fun i (op : Vgpu.Multi.op) ->
      match op with
      | Vgpu.Multi.Dev (d, rop) -> flow_dev_op fl ~async:false ~hb i d rop
      | Vgpu.Multi.Exchange { src_dev; src; src_off; dst_dev; dst; dst_off; elems } ->
          flow_exchange fl i ~src_dev ~src ~src_off ~dst_dev ~dst ~dst_off ~elems)
    plan;
  List.rev !(fl.fissues)

let verify_async ?halo ?state_bufs (slab : slab) (plan : Vgpu.Multi.async_plan) : issue list =
  let fl = make_flow ?halo ?state_bufs slab in
  fl_seed_halo fl (List.map (fun (o : Vgpu.Multi.async_op) -> o.Vgpu.Multi.a_op) plan);
  let ops = Array.of_list plan in
  let reach = async_order ops in
  let hb a b = (reach a).(b) in
  List.iteri
    (fun i (o : Vgpu.Multi.async_op) ->
      match o.Vgpu.Multi.a_op with
      | Vgpu.Multi.Dev (d, rop) -> flow_dev_op fl ~async:true ~hb i d rop
      | Vgpu.Multi.Exchange { src_dev; src; src_off; dst_dev; dst; dst_off; elems } ->
          flow_exchange fl i ~src_dev ~src ~src_off ~dst_dev ~dst ~dst_off ~elems)
    plan;
  List.rev !(fl.fissues)
