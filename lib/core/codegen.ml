(* Lift code generation: lower a typed IR program to a kernel AST.

   Follows the paper's pipeline (§III-A): memory allocation (temporary
   buffers, or aliasing onto inputs under WriteTo), view construction,
   then statement emission.  The new primitives lower as described in
   §IV-B:

   - [Write_to (t, v)] compiles [v] with its output view set to [t]'s
     input view, so stores land in the existing buffer;
   - [Concat] compiles each argument against an offset output view
     (ViewOffset); [Skip] contributes only its length, emitting no code;
   - [Array_cons (e, 1)] under a Concat materialises exactly one store —
     together these produce the in-place scatter loop of §IV-B2;
   - a [Map] whose body produces *rows typed like the forced output view*
     writes each row through the whole view (the paper's "behaves as if
     writing the entire array at each iteration").

   [Map (Glb d)] becomes a guarded NDRange work-item along dimension [d];
   [Map Seq] and [Reduce] become sequential loops. *)

open Kernel_ast

exception Codegen_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

type ctx = {
  precision : Cast.precision;
  mutable block : Cast.stmt list; (* reversed *)
  mutable fresh_id : int;
  mutable temps : (string * Ty.t) list; (* temporary buffers, outermost first *)
  mutable glb_dims : (int * Cast.expr) list; (* NDRange extent per dimension *)
}

let create_ctx ~precision =
  { precision; block = []; fresh_id = 0; temps = []; glb_dims = [] }

let emit ctx s = ctx.block <- s :: ctx.block

let fresh ctx base =
  ctx.fresh_id <- ctx.fresh_id + 1;
  Printf.sprintf "%s_%d" base ctx.fresh_id

(* Compile [f ()] into a fresh statement block and return it. *)
let in_block ctx f =
  let saved = ctx.block in
  ctx.block <- [];
  f ();
  let stmts = List.rev ctx.block in
  ctx.block <- saved;
  stmts

let cast_binop : Ast.binop -> Cast.binop = function
  | Add -> Add
  | Sub -> Sub
  | Mul -> Mul
  | Div -> Div
  | Mod -> Mod
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Lt
  | Le -> Le
  | Gt -> Gt
  | Ge -> Ge
  | And -> And
  | Or -> Or

let cast_scalar_ty (t : Ty.t) =
  match t with
  | Ty.Scalar s -> Ty.to_cast_scalar s
  | _ -> err "expected scalar type, got %s" (Ty.to_string t)

type venv = (int * View.t) list
type tenv = (int * Ty.t) list

let alloc_temp ctx (ty : Ty.t) : View.t =
  let name = fresh ctx "tmp" in
  ctx.temps <- (name, ty) :: ctx.temps;
  View.mem name ty

(* Force an output view to exist, allocating a temporary buffer when the
   producer has nowhere to write. *)
let force_out ctx (out : View.t option) (ty : Ty.t) : View.t =
  match out with Some v -> v | None -> alloc_temp ctx ty

let scalar_of ctx venv tenv compile (e : Ast.expr) : Cast.expr =
  View.read (compile ctx venv tenv None e)

let rec compile ctx (venv : venv) (tenv : tenv) (out : View.t option) (e : Ast.expr) :
    View.t =
  let infer e = Typecheck.infer tenv e in
  let scalar e = scalar_of ctx venv tenv compile e in
  match e with
  | Ast.Param p -> (
      match List.assoc_opt p.p_id venv with
      | Some v -> v
      | None -> err "unbound parameter %s" p.p_name)
  | Ast.Int_lit n -> View.scalar (Cast.Int_lit n)
  | Ast.Real_lit r -> View.scalar (Cast.Real_lit r)
  | Ast.Binop (op, a, b) -> View.scalar (Cast.Binop (cast_binop op, scalar a, scalar b))
  | Ast.Unop (op, a) ->
      let ca = scalar a in
      let op' : Cast.unop =
        match op with Neg -> Neg | Not -> Not | To_real -> To_real | To_int -> To_int
      in
      View.scalar (Cast.Unop (op', ca))
  | Ast.Select (c, a, b) ->
      (* Branches that emit statements (lets, loads under a guard) must be
         compiled into a conditional block, not a ternary: on the device
         the guard predicates the memory accesses — exactly the
         [if (nbr > 0)] structure of the paper's kernels. *)
      let cc = scalar c in
      let then_view = ref (View.scalar (Cast.Int_lit 0)) in
      let else_view = ref (View.scalar (Cast.Int_lit 0)) in
      let then_block = in_block ctx (fun () -> then_view := compile ctx venv tenv None a) in
      let else_block = in_block ctx (fun () -> else_view := compile ctx venv tenv None b) in
      let ca = View.read !then_view and cb = View.read !else_view in
      if then_block = [] && else_block = [] then View.scalar (Cast.Ternary (cc, ca, cb))
      else begin
        let ty = cast_scalar_ty (infer a) in
        let r = fresh ctx "sel" in
        emit ctx (Cast.Decl (ty, r, None));
        emit ctx
          (Cast.If
             ( cc,
               then_block @ [ Cast.Assign (r, ca) ],
               else_block @ [ Cast.Assign (r, cb) ] ));
        View.scalar (Cast.Var r)
      end
  | Ast.Call (f, args) -> View.scalar (Cast.Call (f, List.map scalar args))
  | Ast.Tuple es ->
      (* Multi-output: each component manages its own writes. *)
      View.Tuple_v (List.map (fun e -> compile ctx venv tenv None e) es)
  | Ast.Get (a, i) -> View.tuple_get (compile ctx venv tenv None a) i
  | Ast.Let (p, v, b) ->
      let tv = infer v in
      let view =
        if Ty.is_scalar tv then begin
          let cv = scalar v in
          match cv with
          | Cast.Var _ | Cast.Int_lit _ | Cast.Real_lit _ ->
              View.scalar cv (* no point naming an atom *)
          | _ ->
              let name = fresh ctx p.Ast.p_name in
              emit ctx (Cast.Decl (cast_scalar_ty tv, name, Some cv));
              View.scalar (Cast.Var name)
        end
        else compile ctx venv tenv None v
      in
      compile ctx ((p.Ast.p_id, view) :: venv) ((p.Ast.p_id, tv) :: tenv) out b
  | Ast.Map (mode, f, arg) -> compile_map ctx venv tenv out ~mode ~f ~arg
  | Ast.Reduce (f, init, arg) -> compile_reduce ctx venv tenv ~f ~init ~arg
  | Ast.Zip es -> View.Zip_v (List.map (fun e -> compile ctx venv tenv None e) es)
  | Ast.Slide (sz, st, a) -> View.Slide_v (sz, st, compile ctx venv tenv None a)
  | Ast.Pad (l, _r, c, a) -> (
      let va = compile ctx venv tenv None a in
      let cc = scalar c in
      match infer a with
      | Ty.Array (_, n) -> View.pad_v ~left:l ~len:n ~const:cc va
      | t -> err "pad of non-array %s" (Ty.to_string t))
  | Ast.Split (m, a) -> View.Split_v (m, compile ctx venv tenv None a)
  | Ast.Join a -> (
      match infer a with
      | Ty.Array (Ty.Array (_, m), _) -> View.Join_v (m, compile ctx venv tenv None a)
      | t -> err "join of %s" (Ty.to_string t))
  | Ast.Iota _ -> View.Gen_v (fun i -> View.scalar i)
  | Ast.Build (_, f) -> (
      match f.Ast.l_params with
      | [ p ] ->
          (* a lazy generator: no memory, the element view is built on
             access with the index substituted in *)
          View.Gen_v
            (fun i ->
              compile ctx
                ((p.Ast.p_id, View.scalar i) :: venv)
                ((p.Ast.p_id, Ty.int) :: tenv)
                None f.Ast.l_body)
      | _ -> err "build function must be unary")
  | Ast.Transpose a -> View.Transpose_v (compile ctx venv tenv None a)
  | Ast.Size_val n -> View.scalar (Size.to_cexpr n)
  | Ast.Array_access (a, i) ->
      let va = compile ctx venv tenv None a in
      View.access va (scalar i)
  | Ast.Concat es -> compile_concat ctx venv tenv out es
  | Ast.Skip _ ->
      (* Standalone Skip emits nothing and denotes nothing readable. *)
      View.Gen_v (fun _ -> err "reading an element of Skip")
  | Ast.Array_cons (e, n) ->
      let ty = infer e in
      let o = force_out ctx out (Ty.Array (ty, Size.const n)) in
      let v = scalar e in
      for j = 0 to n - 1 do
        emit ctx (View.write (View.access o (Cast.Int_lit j)) v)
      done;
      o
  | Ast.Write_to (target, value) -> compile_write_to ctx venv tenv ~target ~value
  | Ast.To_private a -> (
      (* Stage a statically sized array of scalars into a private
         (register) array: emitted as a fill loop; later reads hit the
         private array instead of global memory. *)
      let ty = infer a in
      match ty with
      | Ty.Array ((Ty.Scalar s as elt), n) -> (
          match Size.to_int_opt n with
          | Some len ->
              let name = fresh ctx "priv" in
              emit ctx (Cast.Decl_arr (Ty.to_cast_scalar s, name, len));
              let priv = View.mem name (Ty.Array (elt, n)) in
              (* The producer writes straight into the private array. *)
              ignore (compile ctx venv tenv (Some priv) a);
              priv
          | None -> err "toPrivate requires a static length")
      | t -> err "toPrivate of %s" (Ty.to_string t))

and compile_write_to ctx venv tenv ~target ~value =
  let tt = Typecheck.infer tenv target in
  let vt = compile ctx venv tenv None target in
  if Ty.is_scalar tt then begin
    (* Scalar location: a single in-place store. *)
    let v = scalar_of ctx venv tenv compile value in
    emit ctx (View.write vt v);
    vt
  end
  else begin
    ignore (compile ctx venv tenv (Some vt) value);
    vt
  end

and compile_concat ctx venv tenv out es =
  let tys = List.map (Typecheck.infer tenv) es in
  let total_ty =
    match tys with
    | Ty.Array (elt, n0) :: rest ->
        let n =
          List.fold_left
            (fun acc t -> Size.add acc (Ty.length t))
            n0 rest
        in
        Ty.Array (elt, n)
    | _ -> err "concat of non-arrays"
  in
  let o = force_out ctx out total_ty in
  (* Offsets are runtime expressions so that value-dependent skips
     (Skip(Float, idx)) position subsequent writes dynamically. *)
  let offset = ref (Cast.Int_lit 0) in
  List.iter2
    (fun e ty ->
      match e with
      | Ast.Skip (_, n, len) ->
          (* no code: only shifts subsequent writes *)
          let l =
            match len with
            | Some l -> scalar_of ctx venv tenv compile l
            | None -> Size.to_cexpr n
          in
          offset := Cast.(simplify (!offset +: l))
      | _ ->
          let shifted = View.Shift_v (!offset, o) in
          ignore (compile ctx venv tenv (Some shifted) e);
          offset := Cast.(simplify (!offset +: Size.to_cexpr (Ty.length ty))))
    es tys;
  o

and compile_reduce ctx venv tenv ~f ~init ~arg =
  let t_arr = Typecheck.infer tenv arg in
  let elt, n =
    match t_arr with
    | Ty.Array (elt, n) -> (elt, n)
    | t -> err "reduce over %s" (Ty.to_string t)
  in
  let t_init = Typecheck.infer tenv init in
  let va = compile ctx venv tenv None arg in
  let init_c = scalar_of ctx venv tenv compile init in
  let acc = fresh ctx "acc" in
  emit ctx (Cast.Decl (cast_scalar_ty t_init, acc, Some init_c));
  let i = fresh ctx "i" in
  let pacc, px =
    match f.Ast.l_params with
    | [ a; b ] -> (a, b)
    | _ -> err "reduce function must be binary"
  in
  let body =
    in_block ctx (fun () ->
        let elem = View.access va (Cast.Var i) in
        let venv' = (pacc.Ast.p_id, View.scalar (Cast.Var acc)) :: (px.Ast.p_id, elem) :: venv in
        let tenv' = (pacc.Ast.p_id, t_init) :: (px.Ast.p_id, elt) :: tenv in
        let v = scalar_of ctx venv' tenv' compile f.Ast.l_body in
        emit ctx (Cast.Assign (acc, v)))
  in
  emit ctx
    (Cast.For
       { var = i; init = Cast.Int_lit 0; bound = Size.to_cexpr n; step = Cast.Int_lit 1; body });
  View.scalar (Cast.Var acc)

(* A body is "view-pure" when compiling it emits no statements: only
   pattern wrappers and pure scalar expressions.  Such maps in input
   position compile to lazy generator views instead of materialising a
   temporary buffer — this is what makes the slide2/slide3/pad3 macro
   compositions allocation-free. *)
and view_pure (e : Ast.expr) : bool =
  match e with
  | Ast.Param _ | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Iota _ | Ast.Size_val _ -> true
  | Ast.Binop (_, a, b) | Ast.Array_access (a, b) -> view_pure a && view_pure b
  | Ast.Unop (_, a) | Ast.Get (a, _) | Ast.Join a | Ast.Transpose a ->
      view_pure a
  | Ast.Slide (_, _, a) | Ast.Split (_, a) -> view_pure a
  | Ast.Pad (_, _, c, a) -> view_pure c && view_pure a
  | Ast.Call (_, es) | Ast.Zip es | Ast.Tuple es -> List.for_all view_pure es
  | Ast.Map (Ast.Seq, f, a) -> view_pure f.Ast.l_body && view_pure a
  | Ast.Build (_, f) -> view_pure f.Ast.l_body
  | Ast.Select _ | Ast.Let _ | Ast.Map _ | Ast.Reduce _ | Ast.Concat _ | Ast.Skip _
  | Ast.Array_cons _ | Ast.Write_to _ | Ast.To_private _ ->
      false

and compile_map ctx venv tenv out ~mode ~f ~arg =
  let t_arr = Typecheck.infer tenv arg in
  let elt, n =
    match t_arr with
    | Ty.Array (elt, n) -> (elt, n)
    | t -> err "map over %s" (Ty.to_string t)
  in
  let p =
    match f.Ast.l_params with [ p ] -> p | _ -> err "map function must be unary"
  in
  let t_body = Typecheck.infer ((p.Ast.p_id, elt) :: tenv) f.Ast.l_body in
  let va = compile ctx venv tenv None arg in
  if out = None && mode = Ast.Seq && view_pure f.Ast.l_body then
    (* input-position map with a view-only body: stay lazy *)
    View.Gen_v
      (fun i ->
        let elem = View.access va i in
        compile ctx ((p.Ast.p_id, elem) :: venv) ((p.Ast.p_id, elt) :: tenv) None f.Ast.l_body)
  else begin
  (* Decide where each iteration's result goes. *)
  let self_writing = match t_body with Ty.Tuple _ -> true | _ -> false in
  let out_view =
    if self_writing then None
    else Some (force_out ctx out (Ty.Array (t_body, n)))
  in
  (* The scatter idiom: the body produces whole rows typed like the
     forced output; every iteration writes through the entire view. *)
  let row_scatter =
    match out with
    | Some o -> (
        match (o, t_body) with
        | View.Mem m, Ty.Array _ -> Ty.equal m.View.m_ty t_body
        | _ -> false)
    | None -> false
  in
  let compile_iteration i =
    let elem = View.access va (Cast.Var i) in
    (* Scalar elements are staged in a register, as in the paper's
       generated code (float tmp1 = A[i]), so repeated uses of the lambda
       parameter repeat neither the load nor — after fusion, where the
       element is a whole fused expression — the computation. *)
    let elem =
      match (elt, elem) with
      | Ty.Scalar _, View.Scalar e
        when (match e with
             | Cast.Var _ | Cast.Int_lit _ | Cast.Real_lit _ | Cast.Global_id _ -> false
             | _ -> true) ->
          let name = fresh ctx p.Ast.p_name in
          emit ctx (Cast.Decl (cast_scalar_ty elt, name, Some (Cast.simplify e)));
          View.scalar (Cast.Var name)
      | _ -> elem
    in
    let venv' = (p.Ast.p_id, elem) :: venv in
    let tenv' = (p.Ast.p_id, elt) :: tenv in
    if self_writing then ignore (compile ctx venv' tenv' None f.Ast.l_body)
    else begin
      let o = Option.get out_view in
      let target = if row_scatter then o else View.access o (Cast.Var i) in
      if Ty.is_scalar t_body then begin
        let v = scalar_of ctx venv' tenv' compile f.Ast.l_body in
        emit ctx (View.write target v)
      end
      else ignore (compile ctx venv' tenv' (Some target) f.Ast.l_body)
    end
  in
  (match mode with
  | Ast.Seq ->
      let i = fresh ctx "i" in
      let body = in_block ctx (fun () -> compile_iteration i) in
      emit ctx
        (Cast.For
           {
             var = i;
             init = Cast.Int_lit 0;
             bound = Size.to_cexpr n;
             step = Cast.Int_lit 1;
             body;
           })
  | Ast.Glb d ->
      let i = fresh ctx (Printf.sprintf "gid%d" d) in
      let extent = Cast.simplify (Size.to_cexpr n) in
      if not (List.mem_assoc d ctx.glb_dims) then ctx.glb_dims <- (d, extent) :: ctx.glb_dims;
      emit ctx (Cast.Decl (Cast.Int, i, Some (Cast.Global_id d)));
      let body = in_block ctx (fun () -> compile_iteration i) in
      emit ctx (Cast.If (Cast.(Var i <: extent), body, [])));
    match out_view with
    | Some o -> o
    | None -> View.Gen_v (fun _ -> err "result of a self-writing map is not readable")
  end

(* ------------------------------------------------------------------ *)
(* Whole-kernel compilation *)

type compiled = {
  kernel : Cast.kernel;
  result_ty : Ty.t;
  out_param : string option; (* fresh output buffer appended to params, if needed *)
  temp_params : (string * Ty.t) list;
  written_params : string list; (* parameters updated in place by WriteTo *)
}

(* Parameters a program writes in place (WriteTo targets), in source
   order. *)
let written_params_of (f : Ast.lam) : string list =
  let rec target_param (e : Ast.expr) =
    match e with
    | Ast.Param p -> [ p.Ast.p_name ]
    | Ast.Array_access (a, _) -> target_param a
    | _ -> []
  in
  let rec go (e : Ast.expr) =
    match e with
    | Ast.Write_to (t, v) -> target_param t @ go v
    | Ast.Tuple es | Ast.Concat es -> List.concat_map go es
    | Ast.Let (_, v, b) -> go v @ go b
    | Ast.Map (_, f, a) -> go f.Ast.l_body @ go a
    | _ -> []
  in
  List.sort_uniq String.compare (go f.Ast.l_body)

(* Size variables mentioned anywhere in a program: they become int scalar
   kernel parameters. *)
let size_vars_of_program (f : Ast.lam) : string list =
  let acc = ref [] in
  let add_size s = acc := Size.vars s @ !acc in
  let add_ty t = acc := Ty.size_vars t @ !acc in
  let rec go (e : Ast.expr) =
    match e with
    | Param p -> add_ty p.p_ty
    | Int_lit _ | Real_lit _ -> ()
    | Binop (_, a, b) | Array_access (a, b) | Write_to (a, b) -> go a; go b
    | Unop (_, a) | Get (a, _) | Join a | Array_cons (a, _) -> go a
    | Select (a, b, c) -> go a; go b; go c
    | Call (_, es) | Tuple es | Zip es | Concat es -> List.iter go es
    | Let (_, v, b) -> go v; go b
    | Map (_, f, a) -> go f.Ast.l_body; go a
    | Reduce (f, i, a) -> go f.Ast.l_body; go i; go a
    | Slide (_, _, a) -> go a
    | Pad (_, _, c, a) -> go c; go a
    | Split (n, a) -> add_size n; go a
    | Iota n -> add_size n
    | Skip (t, n, len) -> (
        add_ty t;
        match len with Some l -> go l | None -> add_size n)
    | Size_val n -> add_size n
    | To_private a -> go a
    | Build (n, f) -> add_size n; go f.Ast.l_body
    | Transpose a -> go a
  in
  List.iter (fun p -> add_ty p.Ast.p_ty) f.Ast.l_params;
  go f.Ast.l_body;
  List.sort_uniq String.compare !acc

let buffer_param_of (p : Ast.param) : Cast.param =
  match Ty.leaf_scalar p.p_ty with
  | Some s -> Cast.param p.p_name (Ty.to_cast_scalar s)
  | None -> err "parameter %s has unstorable type %s" p.p_name (Ty.to_string p.p_ty)

(* Compile a closed program into a kernel.

   Array parameters become global buffers named after the parameter;
   scalar parameters and all size variables become scalar kernel
   parameters.  If the program's result is not already written in place
   (via WriteTo), a fresh [out] buffer parameter is appended. *)
let compile_kernel ?(name = "kernel") ~precision (f : Ast.lam) : compiled =
  List.iter
    (fun (p : Ast.param) ->
      if (not (Ty.is_scalar p.p_ty)) && Ty.leaf_scalar p.p_ty = None then
        err "parameter %s has unstorable type %s" p.p_name (Ty.to_string p.p_ty))
    f.Ast.l_params;
  let ctx = create_ctx ~precision in
  let result_ty = Typecheck.infer_program f in
  let tenv = List.map (fun p -> (p.Ast.p_id, p.Ast.p_ty)) f.Ast.l_params in
  let venv =
    List.map
      (fun (p : Ast.param) ->
        if Ty.is_scalar p.p_ty then (p.p_id, View.scalar (Cast.Var p.p_name))
        else (p.p_id, View.mem p.p_name p.p_ty))
      f.Ast.l_params
  in
  (* Does the program write its own outputs? *)
  let rec self_writing (e : Ast.expr) =
    match e with
    | Ast.Write_to _ -> true
    | Ast.Tuple es -> List.for_all self_writing es
    | Ast.Let (_, _, b) -> self_writing b
    | Ast.Map (_, f, _) -> self_writing f.Ast.l_body
    | _ -> false
  in
  let needs_out = not (self_writing f.Ast.l_body) in
  let out_view = if needs_out then Some (View.mem "out" result_ty) else None in
  ignore (compile ctx venv tenv out_view f.Ast.l_body);
  let body = List.rev ctx.block in
  let array_params, scalar_params =
    List.partition (fun (p : Ast.param) -> not (Ty.is_scalar p.p_ty)) f.Ast.l_params
  in
  let params =
    List.map buffer_param_of array_params
    @ (if needs_out then
         match Ty.leaf_scalar result_ty with
         | Some s -> [ Cast.param "out" (Ty.to_cast_scalar s) ]
         | None -> err "program result type %s is not storable" (Ty.to_string result_ty)
       else [])
    @ List.map
        (fun (name, ty) ->
          match Ty.leaf_scalar ty with
          | Some s -> Cast.param name (Ty.to_cast_scalar s)
          | None -> err "temporary of unstorable type")
        ctx.temps
    @ List.map
        (fun (p : Ast.param) -> Cast.param ~kind:Cast.Scalar_param p.p_name (cast_scalar_ty p.p_ty))
        scalar_params
    @ List.map
        (fun v -> Cast.param ~kind:Cast.Scalar_param v Cast.Int)
        (List.filter
           (fun v -> not (List.exists (fun (p : Ast.param) -> p.Ast.p_name = v) scalar_params))
           (size_vars_of_program f))
  in
  let global_size =
    let dims = List.sort compare (List.map fst ctx.glb_dims) in
    match dims with
    | [] -> [ Cast.Int_lit 1 ]
    | _ ->
        let maxd = List.fold_left max 0 dims in
        List.init (maxd + 1) (fun d ->
            match List.assoc_opt d ctx.glb_dims with
            | Some e -> e
            | None -> Cast.Int_lit 1)
  in
  let kernel =
    Cast.simplify_kernel { Cast.name; precision; params; body; global_size; local_size = [] }
  in
  {
    kernel;
    result_ty;
    out_param = (if needs_out then Some "out" else None);
    temp_params = List.rev ctx.temps;
    written_params = written_params_of f;
  }
