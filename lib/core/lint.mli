(** Host-plan lint: static well-formedness checks on host programs and
    sharded multi-device plans, before (and independent of) compilation.

    {!check_host} walks a {!Host.hexpr} mirroring the compiler's
    evaluation order and reports:
    - {b use-before-ToGPU} (error): a kernel argument, copy endpoint or
      WriteTo target buffer that was never transferred to the device;
    - {b dead transfers} (warning): ToGPU whose buffer is never consumed
      afterwards, double transfers with no use in between, ToHost of a
      buffer that never lived on the device;
    - {b arity/kind mismatches} (error): kernel calls checked against
      the Lift lambda's parameters — wrong argument count, scalar where
      a buffer is expected and vice versa.

    {!check_sharded} checks a {!Vgpu.Multi.plan} for halo-exchange
    coverage: a Z-cut whose two devices launch in consecutive steps
    (segments separated by the buffer-rotation [Swap]s) with no
    [Exchange] across the cut in the earlier step is reported as an
    error — step k+1 would consume stale ghost planes.

    {!check_async} extends the discipline to event-ordered async plans
    (the overlapped schedule), where per-queue FIFO order plus explicit
    signal→wait edges must cover the halo hazards a barrier used to.

    {!verify_plan} / {!verify_async} go beyond structure: they run the
    static stencil-footprint inference ({!Kernel_ast.Footprint}) on
    every launch and prove per ghost plane that exchanges are wide
    enough, fresh enough, and ordered before the launches that consume
    them. *)

type severity =
  | Error
  | Warning

type issue = {
  severity : severity;
  code : string;  (** stable machine-readable tag *)
  message : string;
}

val check_host : Host.hexpr -> issue list
(** Issues in program order (dead-transfer warnings last). *)

val check_sharded : ?tblock:int -> Vgpu.Multi.plan -> issue list
(** [tblock] (default 1) is the temporal block depth: with depth-T ghost
    zones a cut legitimately goes T consecutive steps between exchanges,
    so the missing-exchange error fires only past that bound. *)

val check_async : ?imports:int list -> Vgpu.Multi.async_plan -> issue list
(** Overlap-aware checks on an event-ordered async plan, where ordering
    is per-queue FIFO plus explicit signal→wait edges:
    - {b wait-unsignaled} / {b duplicate-event} (error): a wait naming
      an event no earlier op signals (and that is not in [imports]), or
      an event signaled twice.  [imports] defaults to the events waited
      on before any op signals them — the carried-over signals of a
      preceding plan segment (e.g. the previous time step's tail);
    - {b unordered-halo-producer} (error): an [Exchange] not ordered
      after any source-device launch that references the source buffer;
    - {b unordered-halo-consumer} (error): an [Exchange] with later
      destination-device launches referencing the exchanged buffer but
      none ordered after it — the race a dropped frontier wait
      introduces.  Interior launches are legitimately concurrent with
      the exchange, so one ordered consumer suffices.

    Buffer identities are tracked through per-device [Swap] rotation
    markers (see {!Acoustics.Gpu_sim.overlap_plan} — the runtime path
    rotates host-side instead). *)

(* -- Footprint-driven dataflow verification --------------------------- *)

type slab = {
  sl_nx : int;
  sl_ny : int;
  sl_planes : int array;
      (** Z-planes per device, {e including} the ghost planes — the
          allocated slab depth ([Vgpu.Shard.slab.planes]). *)
}
(** Slab geometry of a Z-cut sharded run, against which plane ranges of
    launches and exchange offsets are interpreted. *)

val verify_plan :
  ?halo:int -> ?state_bufs:string list -> slab -> Vgpu.Multi.plan -> issue list
(** Symbolic dataflow verification of a synchronous sharded plan.  Every
    [Launch] is analysed with {!Kernel_ast.Footprint.infer} under the
    environment its resolved arguments define; reads reaching a ghost
    plane of the device's slab are checked against the {e validity} of
    that ghost.  [halo] (default 1) is the ghost depth per side — the
    temporal block depth T.  Ghost validity starts at the fill width of
    the exchange (or [halo] for host-seeded ghosts) and {e ages}: each
    in-block launch that rewrites ghost planes (the redundant frontier
    recompute of a temporally-blocked schedule) carries validity one
    read-radius shallower than its most-decayed input, so a depth-T
    exchange proves exactly T steps of re-launches and one plane too few
    is caught at the step where validity runs out.  [state_bufs] names
    branch-state buffers (exchanged at block boundaries but not
    slab-shaped), which are excluded from the ghost-plane model.
    - {b halo-too-narrow} (error): a kernel's inferred read radius
      (planes) exceeds the ghost validity at that launch — the
      acceptance-defeating cases being a width-0 exchange against a
      radius-1 stencil, and a depth T-1 exchange driving a depth-T
      block.  The diagnostic names the exchange width that would have
      sufficed;
    - {b stale-halo} (error): the source device rewrote the frontier
      planes backing the ghost after the exchange copied them;
    - {b clobbered-halo} (error): the reading device itself overwrote
      its ghost planes after the fill;
    - {b uninit-read} (error): a launch, readback, copy or exchange
      consumes a buffer that an [Alloc] created but nothing wrote or
      uploaded;
    - {b exchange-wrong-source} (error): a ghost filled from a device
      that is not the neighbour across that cut;
    - {b halo-unverified} (warning, once per kernel/buffer): reads are
      data-dependent (indirect), so ghost coverage cannot be proven
      statically and is left to the runtime sanitizer;
    - {b exchange-partial-plane} (warning): an exchange that is not a
      whole number of XY planes.

    Buffers not mentioned in the plan are assumed host-seeded with
    coherent depth-[halo] ghosts (the scatter performed by
    {!Acoustics.Gpu_sim} before stepping). *)

val verify_async :
  ?halo:int -> ?state_bufs:string list -> slab -> Vgpu.Multi.async_plan -> issue list
(** {!verify_plan}'s checks with happens-before from per-queue FIFO
    order plus signal→wait edges, plus
    - {b unordered-ghost-read} (error): a launch reads a ghost plane but
      is not ordered after the exchange that fills it — the precise race
      a dropped frontier wait introduces.

    Flow checks only; run {!check_async} as well for event
    well-formedness. *)

val errors : issue list -> issue list
(** The [Error]-severity subset. *)

val pp_issue : Format.formatter -> issue -> unit
