(** Host-plan lint: static well-formedness checks on host programs and
    sharded multi-device plans, before (and independent of) compilation.

    {!check_host} walks a {!Host.hexpr} mirroring the compiler's
    evaluation order and reports:
    - {b use-before-ToGPU} (error): a kernel argument, copy endpoint or
      WriteTo target buffer that was never transferred to the device;
    - {b dead transfers} (warning): ToGPU whose buffer is never consumed
      afterwards, double transfers with no use in between, ToHost of a
      buffer that never lived on the device;
    - {b arity/kind mismatches} (error): kernel calls checked against
      the Lift lambda's parameters — wrong argument count, scalar where
      a buffer is expected and vice versa.

    {!check_sharded} checks a {!Vgpu.Multi.plan} for halo-exchange
    coverage: a Z-cut whose two devices launch in consecutive steps
    (segments separated by the buffer-rotation [Swap]s) with no
    [Exchange] across the cut in the earlier step is reported as an
    error — step k+1 would consume stale ghost planes.

    {!check_async} extends the discipline to event-ordered async plans
    (the overlapped schedule), where per-queue FIFO order plus explicit
    signal→wait edges must cover the halo hazards a barrier used to. *)

type severity =
  | Error
  | Warning

type issue = {
  severity : severity;
  code : string;  (** stable machine-readable tag *)
  message : string;
}

val check_host : Host.hexpr -> issue list
(** Issues in program order (dead-transfer warnings last). *)

val check_sharded : Vgpu.Multi.plan -> issue list

val check_async : ?imports:int list -> Vgpu.Multi.async_plan -> issue list
(** Overlap-aware checks on an event-ordered async plan, where ordering
    is per-queue FIFO plus explicit signal→wait edges:
    - {b wait-unsignaled} / {b duplicate-event} (error): a wait naming
      an event no earlier op signals (and that is not in [imports]), or
      an event signaled twice;
    - {b unordered-halo-producer} (error): an [Exchange] not ordered
      after any source-device launch that references the source buffer;
    - {b unordered-halo-consumer} (error): an [Exchange] with later
      destination-device launches referencing the exchanged buffer but
      none ordered after it — the race a dropped frontier wait
      introduces.  Interior launches are legitimately concurrent with
      the exchange, so one ordered consumer suffices.

    Buffer identities are tracked through per-device [Swap] rotation
    markers (see {!Acoustics.Gpu_sim.overlap_plan} — the runtime path
    rotates host-side instead). *)

val errors : issue list -> issue list
(** The [Error]-severity subset. *)

val pp_issue : Format.formatter -> issue -> unit
