(** Rewrite-space exploration.

    Lift's optimisation story (paper §III): one high-level program is
    rewritten into many semantically equal variants and the best is
    selected for the target hardware.  Bounded breadth-first closure of
    the rewrite rules, plus compilation and ranking with the virtual
    GPU's performance model. *)

type variant = {
  v_program : Ast.lam;
  v_trace : string list;  (** rule names applied, in order *)
}

val key : Ast.lam -> string
(** Alpha-insensitive structural key used for deduplication. *)

val variants : ?rules:Rewrite.rule list -> ?depth:int -> Ast.lam -> variant list
(** All distinct variants reachable in at most [depth] rule sweeps,
    including the original program. *)

type ranked = {
  r_variant : variant;
  r_kernel : Kernel_ast.Cast.kernel;
  r_time_s : float;
}

val rank :
  ?precision:Kernel_ast.Cast.precision ->
  device:Vgpu.Device.t ->
  workload:Vgpu.Perf_model.workload ->
  variant list ->
  ranked list
(** Compile each variant and sort by predicted runtime (fastest first);
    variants that fail to compile are dropped. *)

val frontier :
  ?rules:Rewrite.rule list ->
  ?depth:int ->
  ?k:int ->
  ?precision:Kernel_ast.Cast.precision ->
  device:Vgpu.Device.t ->
  workload:Vgpu.Perf_model.workload ->
  Ast.lam ->
  ranked list
(** Explore, lower every variant's outer map to the GPU, compile, rank,
    and keep the [k] (default 3) fastest — the model-led frontier that
    {!Harness.Autotune} re-ranks by measurement.  Each survivor's
    [r_variant.v_trace] identifies it for persistence; see {!replay}. *)

val best :
  ?rules:Rewrite.rule list ->
  ?depth:int ->
  ?precision:Kernel_ast.Cast.precision ->
  device:Vgpu.Device.t ->
  workload:Vgpu.Perf_model.workload ->
  Ast.lam ->
  ranked option
(** [frontier ~k:1], returning the fastest variant if any compiles. *)

val replay : ?rules:Rewrite.rule list -> trace:string list -> Ast.lam -> Ast.lam
(** Reconstruct a variant from its rule-name trace.  Replay is exact:
    {!variants} applies rules with {!Rewrite.apply_everywhere} — a
    deterministic whole-program sweep — so the name sequence alone
    reproduces the same program.  Traces from {!frontier}/{!best} are of
    the pre-lowering program; apply
    {!Rewrite.lower_outer_map_to_glb} to the result before compiling.
    @raise Invalid_argument on a rule name absent from [rules]. *)
