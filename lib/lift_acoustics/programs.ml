(* The room-acoustics kernels expressed in the Lift IR (paper §V).

   Buffer parameter names follow the convention shared with the
   hand-written kernels so the same driver ([Acoustics.Gpu_sim]) can run
   either side of every comparison:

     prev curr next         grid time levels, linearised, length N
     nbrs                   per-voxel inside-neighbour count, length N
     bidx material          boundary indices / material ids, length nB
     beta bi d f di         per-material coefficient tables
     g1 v2 v1               FD branch state, branch-major, length MB*nB

   Size variables: N (grid voxels), nB (boundary points), NM (materials);
   the ODE branch count MB is a compile-time constant, as in the paper's
   kernels.  Scalar parameters: l, l2 (Courant number and its square) and
   the grid strides Nx, NxNy. *)

open Lift

let n = Size.var "N"
let nb = Size.var "nB"
let nm = Size.var "NM"

let grid_ty = Ty.array Ty.real n
let nbrs_ty = Ty.array Ty.int n
let bidx_ty = Ty.array Ty.int nb
let material_ty = Ty.array Ty.int nb
let beta_ty = Ty.array Ty.real nm

let i6 = Ast.int 6
let r05 = Ast.real 0.5
let r1 = Ast.real 1.0
let r2 = Ast.real 2.0

(* 0.5 * l * (6 - nbr) * beta *)
let loss_coeff ~l ~nbr ~beta = Ast.(r05 *! l *! to_real (i6 -! nbr) *! beta)

(* The volume-handling kernel (paper Listing 2, kernel 1, as generated
   from Lift).  One work-item per voxel; points outside the room are
   rewritten to zero, which preserves the zero halo the stencil relies
   on. *)
let volume () : Ast.lam =
  let nbrs = Ast.named_param "nbrs" nbrs_ty in
  let prev = Ast.named_param "prev" grid_ty in
  let curr = Ast.named_param "curr" grid_ty in
  let next = Ast.named_param "next" grid_ty in
  let nx = Ast.named_param "Nx" Ty.int in
  let nxny = Ast.named_param "NxNy" Ty.int in
  let l2 = Ast.named_param "l2" Ty.real in
  let at arr i = Ast.Array_access (Ast.Param arr, i) in
  let body =
    Ast.Write_to
      ( Ast.Param next,
        Ast.map_glb
          (Ast.lam1 ~name:"idx" Ty.int (fun idx ->
               Ast.let_ ~name:"nbr" Ty.int (at nbrs idx) (fun nbr ->
                   Ast.Select
                     ( Ast.(nbr >! int 0),
                       Ast.let_ ~name:"s" Ty.real
                         Ast.(
                           at curr (idx -! int 1)
                           +! at curr (idx +! int 1)
                           +! at curr (idx -! Param nx)
                           +! at curr (idx +! Param nx)
                           +! at curr (idx -! Param nxny)
                           +! at curr (idx +! Param nxny))
                         (fun s ->
                           Ast.(
                             ((r2 -! (Param l2 *! to_real nbr)) *! at curr idx)
                             +! (Param l2 *! s)
                             -! at prev idx)),
                       Ast.real 0.0 ))))
          (Ast.Iota n) )
  in
  { Ast.l_params = [ nbrs; prev; curr; next; nx; nxny; l2 ]; l_body = body }

(* Frequency-independent single-material boundary handling (Listing 2,
   kernel 2): an in-place scatter over the boundary indices. *)
let boundary_fi () : Ast.lam =
  let bidx = Ast.named_param "bidx" bidx_ty in
  let nbrs = Ast.named_param "nbrs" nbrs_ty in
  let prev = Ast.named_param "prev" grid_ty in
  let next = Ast.named_param "next" grid_ty in
  let l = Ast.named_param "l" Ty.real in
  let beta = Ast.named_param "beta" Ty.real in
  let at arr i = Ast.Array_access (Ast.Param arr, i) in
  let body =
    Ast.Write_to
      ( Ast.Param next,
        Ast.map_glb
          (Ast.lam1 ~name:"idx" Ty.int (fun idx ->
               Ast.let_ ~name:"nbr" Ty.int (at nbrs idx) (fun nbr ->
                   Ast.let_ ~name:"cf" Ty.real
                     (loss_coeff ~l:(Ast.Param l) ~nbr ~beta:(Ast.Param beta))
                     (fun cf ->
                       Ast.scatter_row ~elt_ty:Ty.real ~n ~sym:"_sk_fi" ~index:idx
                         Ast.((at next idx +! (cf *! at prev idx)) /! (r1 +! cf))))))
          (Ast.Param bidx) )
  in
  { Ast.l_params = [ bidx; nbrs; prev; next; l; beta ]; l_body = body }

(* Frequency-independent multi-material boundary handling (paper
   Listing 7).  The per-material admittance [beta] is a kernel argument
   in global memory — the difference from the hand-written kernel the
   paper discusses in §VII-B1. *)
let boundary_fi_mm () : Ast.lam =
  let bidx = Ast.named_param "bidx" bidx_ty in
  let nbrs = Ast.named_param "nbrs" nbrs_ty in
  let material = Ast.named_param "material" material_ty in
  let beta = Ast.named_param "beta" beta_ty in
  let prev = Ast.named_param "prev" grid_ty in
  let next = Ast.named_param "next" grid_ty in
  let l = Ast.named_param "l" Ty.real in
  let at arr i = Ast.Array_access (Ast.Param arr, i) in
  let tup_ty = Ty.tuple [ Ty.int; Ty.int ] in
  let body =
    Ast.Write_to
      ( Ast.Param next,
        Ast.map_glb
          (Ast.lam1 ~name:"tup" tup_ty (fun tup ->
               Ast.let_ ~name:"idx" Ty.int (Ast.Get (tup, 0)) (fun idx ->
                   Ast.let_ ~name:"mi" Ty.int (Ast.Get (tup, 1)) (fun mi ->
                       Ast.let_ ~name:"nbr" Ty.int (at nbrs idx) (fun nbr ->
                           Ast.let_ ~name:"betaVal" Ty.real (at beta mi) (fun betav ->
                               Ast.let_ ~name:"cf" Ty.real
                                 (loss_coeff ~l:(Ast.Param l) ~nbr ~beta:betav)
                                 (fun cf ->
                                   Ast.scatter_row ~elt_ty:Ty.real ~n ~sym:"_sk_fimm"
                                     ~index:idx
                                     Ast.(
                                       (at next idx +! (cf *! at prev idx)) /! (r1 +! cf)))))))))
          (Ast.Zip [ Ast.Param bidx; Ast.Param material ]) )
  in
  { Ast.l_params = [ bidx; nbrs; material; beta; prev; next; l ]; l_body = body }

(* Frequency-dependent multi-material boundary handling (paper
   Listing 8): three arrays updated in place per boundary point, with
   per-point branch state staged in private memory.

   Two ablation knobs (exercised by the benchmark harness):
   - [staging]: [`Private] stages the per-point branch state in private
     memory, as the paper's kernel does; [`Global] re-reads it from
     global memory at each use.
   - [layout]: [`Branch_major] stores branch state as ci = b*nB + i
     (coalesced across work-items, the paper's layout); [`Point_major]
     as ci = i*MB + b (strided). *)
let boundary_fd_mm ?(staging = `Private) ?(layout = `Branch_major) ~mb () : Ast.lam =
  let coeff_len = Size.mul nm (Size.const mb) in
  let coeff_ty = Ty.array Ty.real coeff_len in
  let state_len = Size.mul (Size.const mb) nb in
  let state_ty = Ty.array Ty.real state_len in
  let bidx = Ast.named_param "bidx" bidx_ty in
  let nbrs = Ast.named_param "nbrs" nbrs_ty in
  let material = Ast.named_param "material" material_ty in
  let beta = Ast.named_param "beta_fd" beta_ty in
  let bi = Ast.named_param "bi" coeff_ty in
  let d = Ast.named_param "d" coeff_ty in
  let f = Ast.named_param "f" coeff_ty in
  let di = Ast.named_param "di" coeff_ty in
  let prev = Ast.named_param "prev" grid_ty in
  let next = Ast.named_param "next" grid_ty in
  let g1 = Ast.named_param "g1" state_ty in
  let v2 = Ast.named_param "v2" state_ty in
  let v1 = Ast.named_param "v1" state_ty in
  let l = Ast.named_param "l" Ty.real in
  let at arr i = Ast.Array_access (Ast.Param arr, i) in
  let tup_ty = Ty.tuple [ Ty.int; Ty.int; Ty.int ] in
  let priv_ty = Ty.array_n Ty.real mb in
  let pat arr i = Ast.Array_access (arr, i) in
  (* coefficient table lookup: tbl[mi * MB + b] *)
  let tbl arr mi b = at arr Ast.((mi *! int mb) +! b) in
  (* state index: branch-major ci = b*nB + i, or point-major i*MB + b *)
  let ci b i =
    match layout with
    | `Branch_major -> Ast.((b *! Size_val nb) +! i)
    | `Point_major -> Ast.((i *! int mb) +! b)
  in
  (* branch-state accessors, staged or direct per [staging] *)
  let with_staging i k =
    match staging with
    | `Private ->
        Ast.let_ ~name:"tg1" priv_ty
          (Ast.To_private
             (Ast.map (Ast.lam1 ~name:"b" Ty.int (fun b -> at g1 (ci b i)))
                (Ast.Iota (Size.const mb))))
          (fun tg1 ->
            Ast.let_ ~name:"tv2" priv_ty
              (Ast.To_private
                 (Ast.map (Ast.lam1 ~name:"b" Ty.int (fun b -> at v2 (ci b i)))
                    (Ast.Iota (Size.const mb))))
              (fun tv2 -> k (fun b -> pat tg1 b) (fun b -> pat tv2 b)))
    | `Global -> k (fun b -> at g1 (ci b i)) (fun b -> at v2 (ci b i))
  in
  let body =
    Ast.map_glb
      (Ast.lam1 ~name:"tup" tup_ty (fun tup ->
           Ast.let_ ~name:"idx" Ty.int (Ast.Get (tup, 0)) (fun idx ->
           Ast.let_ ~name:"mi" Ty.int (Ast.Get (tup, 1)) (fun mi ->
           Ast.let_ ~name:"i" Ty.int (Ast.Get (tup, 2)) (fun i ->
           Ast.let_ ~name:"nbr" Ty.int (at nbrs idx) (fun nbr ->
           Ast.let_ ~name:"cf1" Ty.real Ast.(Param l *! to_real (i6 -! nbr)) (fun cf1 ->
           Ast.let_ ~name:"cf" Ty.real Ast.(r05 *! cf1 *! at beta mi) (fun cf ->
           Ast.let_ ~name:"pv" Ty.real (at prev idx) (fun pv ->
           with_staging i (fun g1_at v2_at ->
           (* accumulate the branch fluxes into the stencil result *)
           Ast.let_ ~name:"nv" Ty.real
             (Ast.Reduce
                ( Ast.lam2 ~name1:"acc" ~name2:"b" Ty.real Ty.int (fun acc b ->
                      Ast.(
                        acc
                        -! (cf1 *! tbl bi mi b
                           *! ((r2 *! tbl d mi b *! v2_at b) -! (tbl f mi b *! g1_at b))))),
                  at next idx,
                  Ast.Iota (Size.const mb) ))
             (fun nv ->
           Ast.let_ ~name:"nvf" Ty.real Ast.((nv +! (cf *! pv)) /! (r1 +! cf)) (fun nvf ->
           let v1val b =
             Ast.(
               tbl bi mi b
               *! (nvf -! pv +! (tbl di mi b *! v2_at b) -! (r2 *! tbl f mi b *! g1_at b)))
           in
           let write_g1 =
             Ast.Write_to
               ( Ast.Param g1,
                 Ast.map
                   (Ast.lam1 ~name:"b" Ty.int (fun b ->
                        Ast.scatter_row ~elt_ty:Ty.real ~n:state_len ~sym:"_sk_g1"
                          ~index:(ci b i)
                          Ast.(g1_at b +! (r05 *! (v1val b +! v2_at b)))))
                   (Ast.Iota (Size.const mb)) )
           and write_v1 =
             Ast.Write_to
               ( Ast.Param v1,
                 Ast.map
                   (Ast.lam1 ~name:"b" Ty.int (fun b ->
                        Ast.scatter_row ~elt_ty:Ty.real ~n:state_len ~sym:"_sk_v1"
                          ~index:(ci b i) (v1val b)))
                   (Ast.Iota (Size.const mb)) )
           in
           (* Private staging makes the update order immaterial.  The
              unstaged variant re-reads g1 from global memory, so v1
              (which needs the *old* g1) must be written first — the
              hazard the paper's temporaries exist to avoid. *)
           let writes =
             match staging with
             | `Private -> [ write_g1; write_v1 ]
             | `Global -> [ write_v1; write_g1 ]
           in
           Ast.Tuple (Ast.Write_to (Ast.Array_access (Ast.Param next, idx), nvf) :: writes)))))))))))))
      (Ast.Zip [ Ast.Param bidx; Ast.Param material; Ast.Iota nb ])
  in
  {
    Ast.l_params = [ bidx; nbrs; material; beta; bi; d; f; di; prev; next; g1; v2; v1; l ];
    l_body = body;
  }

(* Fused stencil + naive frequency-independent boundary (paper §V-B,
   Listing 6 semantics): box rooms only, neighbour count computed from
   coordinates, single kernel.  One work-item per voxel of the linearised
   grid. *)
let fused_fi () : Ast.lam =
  let prev = Ast.named_param "prev" grid_ty in
  let curr = Ast.named_param "curr" grid_ty in
  let next = Ast.named_param "next" grid_ty in
  let nx = Ast.named_param "Nx" Ty.int in
  let ny = Ast.named_param "Ny" Ty.int in
  let nz = Ast.named_param "Nz" Ty.int in
  let nxny = Ast.named_param "NxNy" Ty.int in
  let l = Ast.named_param "l" Ty.real in
  let l2 = Ast.named_param "l2" Ty.real in
  let beta = Ast.named_param "beta" Ty.real in
  let at arr i = Ast.Array_access (Ast.Param arr, i) in
  let edge c = Ast.Select (c, Ast.int 0, Ast.int 1) in
  let body =
    Ast.Write_to
      ( Ast.Param next,
        Ast.map_glb
          (Ast.lam1 ~name:"idx" Ty.int (fun idx ->
               Ast.let_ ~name:"z" Ty.int Ast.(idx /! Param nxny) (fun z ->
               Ast.let_ ~name:"rem" Ty.int Ast.(idx %! Param nxny) (fun rem ->
               Ast.let_ ~name:"y" Ty.int Ast.(rem /! Param nx) (fun y ->
               Ast.let_ ~name:"x" Ty.int Ast.(rem %! Param nx) (fun x ->
               Ast.let_ ~name:"nbr" Ty.int
                 (Ast.Select
                    ( Ast.(
                        (x =! int 0) ||! (y =! int 0) ||! (z =! int 0)
                        ||! (x =! Param nx -! int 1)
                        ||! (y =! Param ny -! int 1)
                        ||! (z =! Param nz -! int 1)),
                      Ast.int 0,
                      Ast.(
                        edge (x =! int 1) +! edge (y =! int 1) +! edge (z =! int 1)
                        +! edge (x =! Param nx -! int 2)
                        +! edge (y =! Param ny -! int 2)
                        +! edge (z =! Param nz -! int 2)) ))
                 (fun nbr ->
                   Ast.Select
                     ( Ast.(nbr >! int 0),
                       Ast.let_ ~name:"s" Ty.real
                         Ast.(
                           at curr (idx -! int 1)
                           +! at curr (idx +! int 1)
                           +! at curr (idx -! Param nx)
                           +! at curr (idx +! Param nx)
                           +! at curr (idx -! Param nxny)
                           +! at curr (idx +! Param nxny))
                         (fun s ->
                           Ast.Select
                             ( Ast.(nbr <! i6),
                               Ast.let_ ~name:"cf" Ty.real
                                 (loss_coeff ~l:(Ast.Param l) ~nbr ~beta:(Ast.Param beta))
                                 (fun cf ->
                                   Ast.(
                                     (((r2 -! (Param l2 *! to_real nbr)) *! at curr idx)
                                     +! (Param l2 *! s)
                                     +! ((cf -! r1) *! at prev idx))
                                     /! (r1 +! cf))),
                               Ast.(
                                 ((r2 -! (Param l2 *! to_real nbr)) *! at curr idx)
                                 +! (Param l2 *! s)
                                 -! at prev idx) )),
                       Ast.real 0.0 ))))))))
          (Ast.Iota n) )
  in
  { Ast.l_params = [ prev; curr; next; nx; ny; nz; nxny; l; l2; beta ]; l_body = body }

(* Fused FI kernel in the style of the paper's Listing 6: a 3D NDRange
   over zip3(grid_prev, slide3(3,1, pad3(1,0, grid_curr)),
   array3(m,n,o, computeNumNeighbors)).  The grids carry no physical
   halo; [pad3] virtualises it, exactly as the Listing's composition
   does, and [slide3]/[pad3] are macro compositions of the 1D patterns
   (Macros), so no data is moved to form neighbourhoods.

   Grid type: [[ [real]Nx2 ]Ny2 ]Nz2 over the interior dimensions. *)
let nz2 = Size.var "Nz2"
let ny2 = Size.var "Ny2"
let nx2 = Size.var "Nx2"
let grid3_ty = Ty.array (Ty.array (Ty.array Ty.real nx2) ny2) nz2

let fused_fi_3d () : Ast.lam =
  let prev = Ast.named_param "prev" grid3_ty in
  let curr = Ast.named_param "curr" grid3_ty in
  let next = Ast.named_param "next" grid3_ty in
  let l = Ast.named_param "l" Ty.real in
  let l2 = Ast.named_param "l2" Ty.real in
  let beta = Ast.named_param "beta" Ty.real in
  let win_ty = Ty.array_n (Ty.array_n (Ty.array_n Ty.real 3) 3) 3 in
  let row_real = Ty.array Ty.real nx2 in
  let row_win = Ty.array win_ty nx2 in
  let row_int = Ty.array Ty.int nx2 in
  let slice_tup =
    Ty.tuple
      [ Ty.array row_real ny2; Ty.array row_win ny2; Ty.array row_int ny2 ]
  in
  let row_tup = Ty.tuple [ row_real; row_win; row_int ] in
  let cell_tup = Ty.tuple [ Ty.real; win_ty; Ty.int ] in
  (* computeNumNeighbors over interior coordinates *)
  let edge c = Ast.Select (c, Ast.int 0, Ast.int 1) in
  let nbr_of x y z =
    Ast.(
      edge (x =! int 0)
      +! edge (x =! (Size_val nx2 -! int 1))
      +! edge (y =! int 0)
      +! edge (y =! (Size_val ny2 -! int 1))
      +! edge (z =! int 0)
      +! edge (z =! (Size_val nz2 -! int 1)))
  in
  let nbrs3 =
    Ast.build ~name:"z" nz2 (fun z ->
        Ast.build ~name:"y" ny2 (fun y ->
            Ast.build ~name:"x" nx2 (fun x -> nbr_of x y z)))
  in
  let padded = Macros.pad3 1 1 (Ast.real 0.) ~ty:grid3_ty (Ast.Param curr) in
  let padded_ty =
    Ty.array
      (Ty.array (Ty.array Ty.real (Size.add nx2 (Size.const 2))) (Size.add ny2 (Size.const 2)))
      (Size.add nz2 (Size.const 2))
  in
  let wins = Macros.slide3 3 1 ~ty:padded_ty padded in
  let wat w dz dy dx =
    Ast.Array_access
      (Ast.Array_access (Ast.Array_access (w, Ast.int dz), Ast.int dy), Ast.int dx)
  in
  let compute tup =
    Ast.let_ ~name:"pv" Ty.real (Ast.Get (tup, 0)) (fun pv ->
    Ast.let_ ~name:"nbr" Ty.int (Ast.Get (tup, 2)) (fun nbr ->
        let w = Ast.Get (tup, 1) in
        Ast.let_ ~name:"s" Ty.real
          Ast.(
            wat w 1 1 0 +! wat w 1 1 2 +! wat w 1 0 1 +! wat w 1 2 1 +! wat w 0 1 1
            +! wat w 2 1 1)
          (fun sum ->
            Ast.let_ ~name:"centre" Ty.real (wat w 1 1 1) (fun centre ->
                Ast.Select
                  ( Ast.(nbr <! int 6),
                    Ast.let_ ~name:"cf" Ty.real
                      (loss_coeff ~l:(Ast.Param l) ~nbr ~beta:(Ast.Param beta))
                      (fun cf ->
                        Ast.(
                          (((r2 -! (Param l2 *! to_real nbr)) *! centre)
                          +! (Param l2 *! sum)
                          +! ((cf -! r1) *! pv))
                          /! (r1 +! cf))),
                    Ast.(
                      ((r2 -! (Param l2 *! to_real nbr)) *! centre)
                      +! (Param l2 *! sum)
                      -! pv) )))))
  in
  let body =
    Ast.Write_to
      ( Ast.Param next,
        Ast.map_glb ~dim:2
          (Ast.lam1 ~name:"slice" slice_tup (fun sl ->
               Ast.map_glb ~dim:1
                 (Ast.lam1 ~name:"row" row_tup (fun rw ->
                      Ast.map_glb ~dim:0
                        (Ast.lam1 ~name:"cell" cell_tup compute)
                        (Ast.Zip [ Ast.Get (rw, 0); Ast.Get (rw, 1); Ast.Get (rw, 2) ])))
                 (Ast.Zip [ Ast.Get (sl, 0); Ast.Get (sl, 1); Ast.Get (sl, 2) ])))
          (Ast.Zip [ Ast.Param prev; wins; nbrs3 ]) )
  in
  { Ast.l_params = [ prev; curr; next; l; l2; beta ]; l_body = body }

(* 2.5D-tiled volume kernel (work-group execution tier).

   Same update as [volume ()], restructured the way hand-tuned FDTD
   kernels are: a 2D NDRange of (tw x th) work-groups sweeps the XY
   plane, each group staging its (tw+2) x (th+2) tile of [curr] —
   centre plus one-deep halo — in [__local] memory, while each
   work-item marches Z sequentially keeping the below-plane value in a
   register and reading the above-plane value from global memory.  The
   in-plane stencil arms then come from the local tile: four of the six
   neighbour loads move from the DRAM tier to the on-chip tier, which
   is the entire point of the transformation (see
   [Vgpu.Perf_model.local_bytes_per_point]).

   Bit-exactness with the flat kernel is by construction: the tile
   holds the exact doubles loaded from [curr] (local arrays are never
   rounded), and every floating-point expression reproduces the flat
   kernel's operand association verbatim.  The NDRange rounds up to the
   tile size; out-of-room work-items load nothing and store nothing but
   still reach both barriers (barriers stay in work-group-uniform
   control flow, the legality condition [Kernel_ast.Check] enforces).

   This is a [Cast]-level construction rather than a Lift program: the
   Lift IR deliberately has no local-memory vocabulary yet, and the
   paper's tiled kernels are exactly the hand-written side of the
   comparison. *)
let tiled_volume ?(name = "volume_tiled") ~precision ~tile:(tw, th) () :
    Kernel_ast.Cast.kernel =
  let open Kernel_ast.Cast in
  if tw < 1 || th < 1 then
    invalid_arg
      (Printf.sprintf "tiled_volume: tile must be positive, got %dx%d" tw th);
  let tw2 = tw + 2 in
  let i k = Int_lit k in
  (* tile slot of the column (lx + dx, ly + dy); halo offset included *)
  let slot ~dy ~dx =
    ((Local_id 1 +: i (dy + 1)) *: i tw2) +: (Local_id 0 +: i (dx + 1))
  in
  let tile_at ~dy ~dx = load "tile" (slot ~dy ~dx) in
  let x = var "x" and y = var "y" and z = var "z" in
  let nx = var "Nx" and ny = var "Ny" and nxny = var "NxNy" in
  let pidx dx dy = ((z *: nxny) +: ((y +: i dy) *: nx)) +: (x +: i dx) in
  (* cooperative tile load for plane [z]: centre by every in-room
     work-item, halos by the edge lanes; each slot written by at most
     one work-item, corners (never read) by none *)
  let load_tile =
    [
      If (x <: nx &&: (y <: ny), [ Store ("tile", slot ~dy:0 ~dx:0, load "curr" (pidx 0 0)) ], []);
      If
        ( Local_id 0 =: i 0 &&: (x >=: i 1) &&: (x -: i 1 <: nx) &&: (y <: ny),
          [ Store ("tile", slot ~dy:0 ~dx:(-1), load "curr" (pidx (-1) 0)) ],
          [] );
      If
        ( Local_id 0 =: i (tw - 1) &&: (x +: i 1 <: nx) &&: (y <: ny),
          [ Store ("tile", slot ~dy:0 ~dx:1, load "curr" (pidx 1 0)) ],
          [] );
      If
        ( Local_id 1 =: i 0 &&: (y >=: i 1) &&: (y -: i 1 <: ny) &&: (x <: nx),
          [ Store ("tile", slot ~dy:(-1) ~dx:0, load "curr" (pidx 0 (-1))) ],
          [] );
      If
        ( Local_id 1 =: i (th - 1) &&: (y +: i 1 <: ny) &&: (x <: nx),
          [ Store ("tile", slot ~dy:1 ~dx:0, load "curr" (pidx 0 1)) ],
          [] );
    ]
  in
  (* flat kernel's operand association, verbatim:
     s = ((((west + east) + north) + south) + below) + above
     next = (((2 - l2*nbr) * centre) + l2*s) - prev *)
  let compute =
    If
      ( x <: nx &&: (y <: ny),
        [
          Decl (Int, "idx", Some (((z *: nxny) +: (y *: nx)) +: x));
          Decl (Int, "nbr", Some (load "nbrs" (var "idx")));
          If
            ( var "nbr" >: i 0,
              [
                Decl
                  ( Real,
                    "s",
                    Some
                      (tile_at ~dy:0 ~dx:(-1) +: tile_at ~dy:0 ~dx:1
                      +: tile_at ~dy:(-1) ~dx:0 +: tile_at ~dy:1 ~dx:0
                      +: var "cb"
                      +: load "curr" (var "idx" +: nxny)) );
                Store
                  ( "next",
                    var "idx",
                    ((Real_lit 2.0 -: (var "l2" *: Unop (To_real, var "nbr")))
                     *: tile_at ~dy:0 ~dx:0)
                    +: (var "l2" *: var "s")
                    -: load "prev" (var "idx") );
              ],
              [ Store ("next", var "idx", Real_lit 0.0) ] );
          (* march: this plane's centre becomes next iteration's below *)
          Assign ("cb", tile_at ~dy:0 ~dx:0);
        ],
        [] )
  in
  let pad e t = Binop (Mul, Binop (Div, e +: i (t - 1), i t), i t) in
  {
    name = Printf.sprintf "%s_%dx%d" name tw th;
    precision;
    params =
      [
        param "nbrs" Int;
        param "prev" Real;
        param "curr" Real;
        param "next" Real;
        param ~kind:Scalar_param "Nx" Int;
        param ~kind:Scalar_param "Ny" Int;
        param ~kind:Scalar_param "Nz" Int;
        param ~kind:Scalar_param "NxNy" Int;
        param ~kind:Scalar_param "l2" Real;
      ];
    body =
      [
        Decl (Int, "x", Some (Global_id 0));
        Decl (Int, "y", Some (Global_id 1));
        Decl_local (Real, "tile", tw2 * (th + 2));
        Decl (Real, "cb", Some (Real_lit 0.0));
        For
          {
            var = "z";
            init = i 0;
            bound = var "Nz";
            step = i 1;
            body =
              (* first barrier: plane z-1's tile reads are done before
                 this iteration overwrites the tile *)
              (Barrier :: load_tile) @ [ Barrier; compute ];
          };
      ];
    global_size = [ pad nx tw; pad ny th ];
    local_size = [ tw; th ];
  }

(* Temporally-blocked (fused T-step) volume kernel.

   One launch advances the leapfrog [tblock] generations: a work-item
   per voxel evaluates the pyramid of intermediate generations it
   depends on — generation g at every offset within L1 radius
   tblock - g of its voxel — entirely in registers, and stores only the
   final two generations: u(t+T) to [next] and u(t+T-1) to [next2]
   (which the fused four-buffer rotation turns into the next block's
   [curr]/[prev]).  The per-node update reproduces the exact operand
   association of [Hand_kernels.volume] followed by
   [Hand_kernels.boundary_fi] — interior leapfrog, then the FI loss
   correction wherever 0 < nbr < 6 — so a fused launch is bit-identical
   to T sequential steps of the FI scheme.

   Each node guards on its own neighbour count, fetched through a
   coordinate predicate (outside the grid the count is 0): a zero count
   yields zero without reading anything, which both respects the
   physical shell (where the per-step kernels never write) and keeps
   every load in bounds — on sharded slabs the extreme ghost planes
   carry zero counts ([Shard.slab]), so nodes whose dependency cone
   leaves the slab collapse to the same tolerated-garbage planes the
   per-step blocked cadence produces, and the deep halo exchange
   overwrites them before they are ever consumed.

   Reads of [curr] reach L1 radius T and [prev] radius T-1 as plain
   affine offsets, so [Kernel_ast.Footprint] reports the depth-T
   extents directly and [Lift.Lint.verify_plan] proves the depth-T
   ghost zones sufficient.  The [blocked…_t<T>] name is the convention
   [Acoustics.Gpu_sim] recognises fused kernels by.

   Direct [Cast] construction, like [tiled_volume]: the register
   pyramid (per-node guards over a growing neighbourhood) has no Lift
   vocabulary yet.  Box or arbitrary geometry alike — the neighbour
   counts come from the [nbrs] array, not from coordinates. *)
let blocked_volume ?(name = "blocked_volume") ~precision ~tblock () :
    Kernel_ast.Cast.kernel =
  let open Kernel_ast.Cast in
  if tblock < 1 then
    invalid_arg (Printf.sprintf "blocked_volume: tblock must be >= 1, got %d" tblock);
  let t = tblock in
  let i k = Int_lit k in
  let x = var "x" and y = var "y" and z = var "z" in
  let nx = var "Nx" and ny = var "Ny" and nzv = var "Nz" and nxny = var "NxNy" in
  let l = var "l" and l2 = var "l2" and beta = var "beta" in
  let idx = var "idx" in
  (* offsets within L1 radius r, in a fixed deterministic order *)
  let ball r =
    let o = ref [] in
    for dz = r downto -r do
      for dy = r downto -r do
        for dx = r downto -r do
          if abs dx + abs dy + abs dz <= r then o := (dx, dy, dz) :: !o
        done
      done
    done;
    !o
  in
  let suf d = if d < 0 then "m" ^ string_of_int (-d) else string_of_int d in
  let osuf (dx, dy, dz) = Printf.sprintf "%s_%s_%s" (suf dx) (suf dy) (suf dz) in
  let nbr_name off = "nb_" ^ osuf off in
  let u_name g off = Printf.sprintf "u%d_%s" g (osuf off) in
  let qoff (dx, dy, dz) =
    let e = idx in
    let e = if dz = 0 then e else e +: (i dz *: nxny) in
    let e = if dy = 0 then e else e +: (i dy *: nx) in
    if dx = 0 then e else e +: i dx
  in
  (* in-grid predicate of an offset node, on coordinates (linear-index
     arithmetic would wrap across rows); axes with zero offset need no
     test — the NDRange already confines them *)
  let in_grid (dx, dy, dz) =
    let axis v lim d =
      if d < 0 then [ v >=: i (-d) ] else if d > 0 then [ v <: lim -: i d ] else []
    in
    match axis x nx dx @ axis y ny dy @ axis z nzv dz with
    | [] -> None
    | c :: cs -> Some (List.fold_left ( &&: ) c cs)
  in
  let nbr_decl off =
    let ld = load "nbrs" (qoff off) in
    Decl
      ( Int,
        nbr_name off,
        Some (match in_grid off with None -> ld | Some c -> Ternary (c, ld, i 0)) )
  in
  (* generation [g] at [off]: registers for 1 <= g, direct loads for
     g = 0 ([curr]) and g = -1 ([prev]) *)
  let gval g off =
    if g = 0 then load "curr" (qoff off)
    else if g = -1 then load "prev" (qoff off)
    else var (u_name g off)
  in
  let shift (dx, dy, dz) (ax, ay, az) = (dx + ax, dy + ay, dz + az) in
  (* stencil arms in [Hand_kernels.volume]'s summation order *)
  let arms = [ (-1, 0, 0); (1, 0, 0); (0, -1, 0); (0, 1, 0); (0, 0, -1); (0, 0, 1) ] in
  let u_decl g off =
    let nbr = var (nbr_name off) in
    let fnbr = Unop (To_real, nbr) in
    let s =
      match List.map (fun a -> gval (g - 1) (shift off a)) arms with
      | e :: es -> List.fold_left ( +: ) e es
      | [] -> assert false
    in
    let c = gval (g - 1) off and p = gval (g - 2) off in
    (* the volume kernel's association: ((2 - l2*nbr)*c + l2*s) - p,
       then boundary_fi's (v + cf*p) / (1 + cf) where 0 < nbr < 6.
       Under Single, every generation is rounded where the per-step
       pipeline's stores round it: volume's store of v (which
       boundary_fi then loads back), and boundary_fi's own store. *)
    let rnd e = match precision with Single -> Unop (Round, e) | Double -> e in
    let v = rnd (((Real_lit 2.0 -: (l2 *: fnbr)) *: c) +: (l2 *: s) -: p) in
    let cf = Real_lit 0.5 *: l *: Unop (To_real, i 6 -: nbr) *: beta in
    let bdy = rnd ((v +: (cf *: p)) /: (Real_lit 1.0 +: cf)) in
    Decl
      ( Real,
        u_name g off,
        Some (Ternary (nbr >: i 0, Ternary (nbr <: i 6, bdy, v), Real_lit 0.0)) )
  in
  let decls =
    List.map nbr_decl (ball (t - 1))
    @ List.concat_map
        (fun g -> List.map (u_decl g) (ball (t - g)))
        (List.init t (fun k -> k + 1))
  in
  let centre = (0, 0, 0) in
  let store =
    If
      ( var (nbr_name centre) >: i 0,
        [
          Store ("next", idx, gval t centre);
          Store ("next2", idx, gval (t - 1) centre);
        ],
        [] )
  in
  {
    name = Printf.sprintf "%s_t%d" name t;
    precision;
    params =
      [
        param "nbrs" Int;
        param "prev" Real;
        param "curr" Real;
        param "next" Real;
        param "next2" Real;
        param ~kind:Scalar_param "Nx" Int;
        param ~kind:Scalar_param "Ny" Int;
        param ~kind:Scalar_param "Nz" Int;
        param ~kind:Scalar_param "NxNy" Int;
        param ~kind:Scalar_param "l" Real;
        param ~kind:Scalar_param "l2" Real;
        param ~kind:Scalar_param "beta" Real;
      ];
    global_size = [ Var "Nx"; Var "Ny"; Var "Nz" ];
    local_size = [];
    body =
      [
        Decl (Int, "x", Some (Global_id 0));
        Decl (Int, "y", Some (Global_id 1));
        Decl (Int, "z", Some (Global_id 2));
        Decl (Int, "idx", Some (((z *: nxny) +: (y *: nx)) +: x));
      ]
      @ decls @ [ store ];
  }

(* Compile any of the programs above into a kernel with a given
   precision, after the standard rewrite normalisation.  By default the
   kernel then goes through the [Kernel_ast.Opt] pass pipeline, matching
   what a production code generator would hand to the driver; pass
   [~optimize:false] for the raw codegen output (golden tests, or when a
   runtime with its own optimization stage will launch the kernel). *)
let compile ?(name = "lift_kernel") ?(optimize = true) ~precision (prog : Ast.lam) =
  let prog = Rewrite.normalize_lam prog in
  let compiled = Codegen.compile_kernel ~name ~precision prog in
  if optimize then
    let kernel, _report = Kernel_ast.Opt.optimize compiled.Codegen.kernel in
    { compiled with Codegen.kernel }
  else compiled

(* Listing-5-style host program for a Z-sharded two-device FI time step:
   each shard runs the volume and boundary kernels on its slab-local
   buffers (parameter suffix 0 / 1; one ghost plane on each side of the
   slab), then the [Host.halo_exchange] primitive copies the freshly
   computed ghost planes of [next] across the cut.  The two slabs are
   equal — a symmetric split of an even-Nz box — so both shards share
   the size variables N (slab-local points, ghosts included) and nB
   (per-slab boundary points). *)
let sharded_fi_step_host ?(overlap = false) ~nx ~ny ~slab_planes ~l ~l2 ~beta () :
    Host.hexpr =
  let open Host in
  let p name ty = Ast.named_param name ty in
  let plane = nx * ny in
  let shard d =
    let s name = name ^ string_of_int d in
    let nbrs = p (s "nbrs") nbrs_ty in
    let prev = p (s "prev") grid_ty in
    let curr = p (s "curr") grid_ty in
    let next = p (s "next") grid_ty in
    let bidx = p (s "bidx") bidx_ty in
    let next_g = p (s "next_g") grid_ty in
    ( H_let
        ( next_g,
          ocl_kernel ~name:(s "volume_s") (volume ())
            [
              to_gpu (input nbrs);
              to_gpu (input prev);
              to_gpu (input curr);
              to_gpu (input next);
              H_int nx;
              H_int plane;
              H_real l2;
            ],
          write_to (input next_g)
            (ocl_kernel ~name:(s "boundary_fi_s") (boundary_fi ())
               [
                 to_gpu (input bidx);
                 input nbrs;
                 input prev;
                 input next_g;
                 H_real l;
                 H_real beta;
               ]) ),
      next )
  in
  let step0, next0 = shard 0 and step1, next1 = shard 1 in
  if not overlap then
    H_tuple
      [
        step0;
        step1;
        halo_exchange ~plane ~lo:(input next0) ~lo_planes:(slab_planes + 2)
          ~hi:(input next1);
        to_host (input next0);
        to_host (input next1);
      ]
  else
    (* Event-annotated variant for out-of-order queues: each halo copy
       signals a cl_event and the read-back of a slab waits on the copy
       into *its* ghost plane — the explicit edges that replace the
       in-order queue's implicit ordering (the overlapped schedule of
       [Acoustics.Gpu_sim]).  Same data movement, same results. *)
    H_tuple
      [
        step0;
        step1;
        event "halo_up"
          (copy ~src:(input next0)
             ~src_off:(slab_planes * plane)
             ~dst:(input next1) ~dst_off:0 ~elems:plane);
        event "halo_dn"
          (copy ~src:(input next1) ~src_off:plane ~dst:(input next0)
             ~dst_off:((slab_planes + 1) * plane)
             ~elems:plane);
        wait [ "halo_dn" ] (to_host (input next0));
        wait [ "halo_up" ] (to_host (input next1));
      ]
