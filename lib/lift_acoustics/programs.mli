(** The room-acoustics kernels expressed in the Lift IR (paper §V).

    Buffer parameter names follow the convention shared with the
    hand-written kernels so {!Acoustics.Gpu_sim} can run either side of
    every comparison.  Size variables: N (grid voxels), nB (boundary
    points), NM (materials); the branch count MB is a compile-time
    constant, as in the paper's kernels. *)

open Lift

(** {1 Shared types} *)

val n : Size.t
val nb : Size.t
val nm : Size.t
val grid_ty : Ty.t
val nbrs_ty : Ty.t
val bidx_ty : Ty.t
val material_ty : Ty.t
val beta_ty : Ty.t

(** {1 Programs} *)

val volume : unit -> Ast.lam
(** The volume-handling kernel (Listing 2, kernel 1): one work-item per
    voxel; outside points are rewritten to zero, preserving the halo. *)

val boundary_fi : unit -> Ast.lam
(** Single-material in-place boundary scatter (Listing 2, kernel 2). *)

val boundary_fi_mm : unit -> Ast.lam
(** Frequency-independent multi-material boundary handling (paper
    Listing 7).  [beta] is a kernel argument in global memory — the
    §VII-B1 difference from the hand-written kernel. *)

val boundary_fd_mm :
  ?staging:[ `Private | `Global ] ->
  ?layout:[ `Branch_major | `Point_major ] ->
  mb:int ->
  unit ->
  Ast.lam
(** Frequency-dependent multi-material boundary handling (paper
    Listing 8): three arrays updated in place per boundary point.
    Ablation knobs: [staging] stages branch state in private memory (the
    paper's choice) or re-reads global memory (in which case v1 must be
    written before g1 to avoid a read-after-write hazard — handled
    internally); [layout] selects branch-major (coalesced) or
    point-major branch state. *)

val fused_fi : unit -> Ast.lam
(** Fused stencil + naive FI boundary (paper §V-B / Listing 6
    semantics): box rooms only, single kernel, over the linearised
    grid. *)

val nz2 : Size.t
val ny2 : Size.t
val nx2 : Size.t

val grid3_ty : Ty.t
(** [[ [real]Nx2 ]Ny2 ]Nz2 — interior dimensions, no physical halo. *)

val fused_fi_3d : unit -> Ast.lam
(** Fused FI in the exact style of the paper's Listing 6: a 3D NDRange
    over [zip3(grid_prev, slide3(3,1, pad3(1, grid_curr)),
    array3(computeNumNeighbors))], with slide3/pad3 as macro
    compositions of the 1D patterns ({!Lift.Macros}).  The grids carry
    no physical halo; pad3 virtualises it each step. *)

val tiled_volume :
  ?name:string ->
  precision:Kernel_ast.Cast.precision ->
  tile:int * int ->
  unit ->
  Kernel_ast.Cast.kernel
(** 2.5D-tiled variant of {!volume}: a 2D NDRange of [tw x th]
    work-groups over the XY plane, each staging its [(tw+2) x (th+2)]
    tile of [curr] in [__local] memory between two barriers while Z is
    marched in registers.  Bit-identical to the flat kernel on every
    engine — the local tile holds unrounded doubles and all
    floating-point operand associations are preserved verbatim.  The
    NDRange rounds up to the tile size ([global_size] uses arithmetic
    expressions), with out-of-room work-items idling through the
    barriers.  Drop-in replacement for the flat volume kernel in
    {!Acoustics.Gpu_sim} step lists (same parameter names).
    @raise Invalid_argument when a tile dimension is not positive. *)

val blocked_volume :
  ?name:string ->
  precision:Kernel_ast.Cast.precision ->
  tblock:int ->
  unit ->
  Kernel_ast.Cast.kernel
(** Temporally-blocked (fused T-step) FI kernel: one launch advances the
    leapfrog [tblock] generations, keeping the pyramid of intermediate
    generations in registers — generation g is evaluated at every offset
    within L1 radius [tblock - g] of the work-item's voxel — and storing
    only the final two: u(t+T) to [next] and u(t+T-1) to [next2], which
    the fused four-buffer rotation ({!Acoustics.Gpu_sim}) turns into the
    next block's [curr] / [prev].  Each node applies the exact
    volume-then-boundary_fi update of the per-step kernels (identical
    operand association), so one fused launch is bit-identical to T
    sequential FI steps.  Reads reach [curr] at L1 radius T and [prev]
    at T-1 as plain affine offsets, so {!Kernel_ast.Footprint} reports
    the depth-T extents and {!Lift.Lint.verify_plan} can prove depth-T
    ghost zones sufficient.  The kernel is named
    [<name>_t<T>] — the convention {!Acoustics.Gpu_sim.fused_depth}
    recognises fused kernels by.  FI scheme only (single material, no
    branch state).
    @raise Invalid_argument when [tblock < 1]. *)

val compile :
  ?name:string ->
  ?optimize:bool ->
  precision:Kernel_ast.Cast.precision ->
  Ast.lam ->
  Codegen.compiled
(** Rewrite-normalise and compile a program to a kernel.  [optimize]
    (default [true]) runs the result through the
    {!module:Kernel_ast.Opt} pass pipeline; pass [false] for the raw
    codegen output, e.g. when launching through a runtime that
    optimizes at dispatch time. *)

val sharded_fi_step_host :
  ?overlap:bool ->
  nx:int ->
  ny:int ->
  slab_planes:int ->
  l:float ->
  l2:float ->
  beta:float ->
  unit ->
  Host.hexpr
(** Listing-5-style host program for a Z-sharded two-device FI time
    step: per-shard volume + boundary_fi launches on slab-local buffers
    (parameter suffix 0 / 1), then a {!Host.halo_exchange} of the fresh
    [next] ghost planes across the cut, then read-back.  The two slabs
    are equal ([slab_planes] owned planes each, one ghost plane on each
    side), so both shards resolve the same size variables:
    N = (slab_planes + 2) * nx * ny and nB = per-slab boundary count.

    [overlap] (default [false]) emits the event-annotated variant for
    out-of-order queues: each halo copy signals a [cl_event]
    ({!Host.event}) and each slab's read-back waits on the copy into its
    ghost plane ({!Host.wait}) — the explicit edges that replace the
    in-order queue's implicit ordering.  Same data movement, same
    results. *)
