(* racs — room acoustics code-generation studio.

   Command-line front end over the library:
     racs kernels      dump the generated OpenCL (and hand-written
                       baselines) for every kernel
     racs simulate     run an impulse-response simulation on a box/dome
     racs check        static race/bounds verdicts for every kernel
                       (raw + optimized) plus host-plan lint
     racs experiments  regenerate any of the paper's tables/figures
     racs host-demo    show the compiled host program of paper Listing 5 *)

open Cmdliner
open Acoustics

let precision_conv =
  let parse = function
    | "single" -> Ok Kernel_ast.Cast.Single
    | "double" -> Ok Kernel_ast.Cast.Double
    | s -> Error (`Msg (Printf.sprintf "unknown precision %s" s))
  in
  let print ppf p =
    Fmt.string ppf (match p with Kernel_ast.Cast.Single -> "single" | Double -> "double")
  in
  Arg.conv (parse, print)

let shape_conv =
  let parse = function
    | "box" -> Ok Geometry.Box
    | "dome" -> Ok Geometry.Dome
    | "l-shape" -> Ok Geometry.L_shape
    | s -> Error (`Msg (Printf.sprintf "unknown shape %s" s))
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Geometry.shape_label s))

(* ------------------------------------------------------------------ *)
(* racs kernels *)

let all_kernels ~optimize precision =
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  let lift name prog =
    (Lift_acoustics.Programs.compile ~name ~optimize ~precision prog).Lift.Codegen.kernel
  in
  [
    ("hand-written", Hand_kernels.fused_fi ~precision);
    ("hand-written", Hand_kernels.volume ~precision);
    ("hand-written", Hand_kernels.boundary_fi ~precision);
    ("hand-written", Hand_kernels.boundary_fi_mm ~precision ~betas);
    ("hand-written", Hand_kernels.boundary_fd_mm ~precision ~mb:3);
    ("lift-generated", lift "lift_fused_fi" (Lift_acoustics.Programs.fused_fi ()));
    ("lift-generated", lift "lift_volume" (Lift_acoustics.Programs.volume ()));
    ("lift-generated", lift "lift_boundary_fi" (Lift_acoustics.Programs.boundary_fi ()));
    ("lift-generated", lift "lift_boundary_fi_mm" (Lift_acoustics.Programs.boundary_fi_mm ()));
    ("lift-generated", lift "lift_boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ()));
    ("lift-generated (slide3/pad3 composition)",
      lift "lift_fused_fi_3d" (Lift_acoustics.Programs.fused_fi_3d ()));
    ("work-group tier (2.5D tiled)",
      Lift_acoustics.Programs.tiled_volume ~precision ~tile:(8, 8) ());
  ]

let cmd_kernels precision no_opt =
  List.iter
    (fun (origin, k) ->
      Printf.printf "/* %s, %s precision */\n%s\n" origin
        (match k.Kernel_ast.Cast.precision with Single -> "single" | Double -> "double")
        (Kernel_ast.Print.kernel_to_string k))
    (all_kernels ~optimize:(not no_opt) precision)

(* ------------------------------------------------------------------ *)
(* racs simulate *)

(* "--tile WxH" parser: the work-group tile of the 2.5D volume kernel. *)
let parse_tile s =
  match String.split_on_char 'x' (String.lowercase_ascii s) with
  | [ w; h ] -> (
      match (int_of_string_opt w, int_of_string_opt h) with
      | Some w, Some h when w > 0 && h > 0 -> Some (w, h)
      | _ -> None)
  | _ -> None

let cmd_simulate shape nx ny nz scheme steps backend engine domains shards tblock overlap
    no_overlap no_opt show_stats sanitize verify tile tuned =
  let params = Params.default in
  let dims = Geometry.dims ~nx ~ny ~nz in
  let n_materials = Array.length Material.defaults in
  let room = Geometry.build ~n_materials shape dims in
  let precision = Kernel_ast.Cast.Double in
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  (* Compile without optimizing: the runtime optimizes at dispatch, so the
     per-kernel reports show up under --stats (and --no-opt disables it). *)
  let lift name prog =
    (Lift_acoustics.Programs.compile ~name ~optimize:false ~precision prog).Lift.Codegen.kernel
  in
  let kernels =
    match (scheme, backend) with
    | "fi", `Hand ->
        [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
    | "fi", `Lift ->
        [ lift "volume" (Lift_acoustics.Programs.volume ());
          lift "boundary_fi" (Lift_acoustics.Programs.boundary_fi ()) ]
    | "fi-mm", `Hand ->
        [ Hand_kernels.volume ~precision;
          Hand_kernels.boundary_fi_mm ~precision ~betas ]
    | "fi-mm", `Lift ->
        [ lift "volume" (Lift_acoustics.Programs.volume ());
          lift "boundary_fi_mm" (Lift_acoustics.Programs.boundary_fi_mm ()) ]
    | "fd-mm", `Hand ->
        [ Hand_kernels.volume ~precision;
          Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
    | "fd-mm", `Lift ->
        [ lift "volume" (Lift_acoustics.Programs.volume ());
          lift "boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ()) ]
    | s, _ -> failwith (Printf.sprintf "unknown scheme %s (fi | fi-mm | fd-mm)" s)
  in
  (* --tile WxH: swap the flat volume kernel for the 2.5D work-group
     tiled one (bit-identical results, local-memory execution tier) *)
  let kernels =
    match tile with
    | None -> kernels
    | Some spec -> (
        match parse_tile spec with
        | None ->
            Fmt.epr "racs: --tile expects WxH with positive integers, got %s@." spec;
            exit 2
        | Some (tw, th) ->
            Lift_acoustics.Programs.tiled_volume ~precision ~tile:(tw, th) ()
            :: List.tl kernels)
  in
  let engine : Gpu_sim.engine =
    match engine with
    | `Interp -> `Interp
    | `Jit -> `Jit
    | `Jit_parallel -> `Jit_parallel domains
    | `Native -> `Native
  in
  let shards = if shards > 0 then Some shards else None in
  if tblock < 1 then begin
    Fmt.epr "racs: --tblock expects a positive depth, got %d@." tblock;
    exit 2
  end;
  if tblock > 1 && shards = None && not tuned then begin
    Fmt.epr "racs: --tblock amortises the halo exchange, which needs --shards N (N > 1)@.";
    exit 2
  end;
  let schedule : Gpu_sim.schedule option =
    match (overlap, no_overlap) with
    | true, true ->
        Fmt.epr "racs: --overlap and --no-overlap are mutually exclusive@.";
        exit 2
    | true, false -> Some `Overlap
    | false, true -> Some `Seq
    | false, false -> None
  in
  (* --tuned: run the plan the autotuner picked for this workload.  A
     warm plan cache answers with zero measurements; a cold one runs the
     search first.  The plan overrides --backend/--tile/--shards. *)
  let tuned_plan =
    if not tuned then None
    else begin
      let key =
        Harness.Autotune.key ~engine ~precision ~n_branches:3 ~scheme ~shape ~dims
      in
      let plan =
        match Harness.Plan_cache.find key with
        | Some e -> e.Harness.Plan_cache.e_plan
        | None ->
            Fmt.epr "racs: no cached plan, tuning first (racs tune caches it)...@.";
            (Harness.Autotune.tune ~engine ~precision ~scheme ~shape ~dims ())
              .Harness.Autotune.r_entry
              .Harness.Plan_cache.e_plan
      in
      Printf.printf "tuned plan: %s\n" (Harness.Autotune.plan_label plan);
      Some plan
    end
  in
  let kernels, shards, schedule, unroll_budget, tblock =
    match tuned_plan with
    | None -> (kernels, shards, schedule, None, tblock)
    | Some p ->
        ( Harness.Autotune.plan_kernels ~precision ~n_branches:3 ~scheme p,
          (if p.Harness.Plan_cache.pl_shards > 1 then Some p.Harness.Plan_cache.pl_shards
           else None),
          (if p.Harness.Plan_cache.pl_shards > 1 then
             Some (p.Harness.Plan_cache.pl_schedule :> Gpu_sim.schedule)
           else None),
          p.Harness.Plan_cache.pl_unroll,
          p.Harness.Plan_cache.pl_tblock )
  in
  let sim =
    Gpu_sim.create ~engine ~optimize:(not no_opt) ?unroll_budget ?shards ?schedule
      ?tblock:(if tblock > 1 && shards <> None then Some tblock else None)
      ~fi_beta:0.1 ~n_branches:3
      ?verify:(if verify then Some true else None)
      ~sanitize params room
  in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  let rx = cx + ((nx - 2) / 4) in
  let response = Gpu_sim.run sim kernels ~steps ~receiver:(rx, cy, cz) in
  Gpu_sim.sync sim;
  Printf.printf "room %s %dx%dx%d, %d boundary points, %d steps (%s kernels, %s engine%s)\n"
    (Geometry.shape_label shape) nx ny nz (Geometry.n_boundary room) steps
    (match backend with `Hand -> "hand-written" | `Lift -> "lift-generated")
    (match engine with
    | `Interp -> "interp"
    | `Jit -> "jit"
    | `Jit_parallel d -> Printf.sprintf "jit-parallel[%d]" d
    | `Native -> "native")
    ((match shards with
     | None -> ""
     | Some _ ->
         Printf.sprintf ", %d Z-shards%s%s" (Gpu_sim.n_shards sim)
           (match Gpu_sim.schedule sim with
           | Some `Overlap -> ", overlapped async queues"
           | Some `Seq -> ", sequential schedule"
           | _ -> "")
           (if Gpu_sim.tblock sim > 1 then
              Printf.sprintf ", temporal blocks T=%d" (Gpu_sim.tblock sim)
            else ""))
    ^ match tile with None -> "" | Some t -> Printf.sprintf ", tiled volume %s" t);
  Printf.printf "receiver at (%d,%d,%d); first samples:\n " rx cy cz;
  Array.iteri (fun i v -> if i < 12 then Printf.printf " %+.5f" v) response;
  let e = Energy.kinetic_energy sim.Gpu_sim.state in
  Printf.printf "\nfinal kinetic energy %.6g, dc offset %.6g, peak |u| %.4f\n" e
    (Energy.dc_offset sim.Gpu_sim.state)
    (Energy.max_abs sim.Gpu_sim.state.State.curr);
  if show_stats then begin
    Fmt.pr "\n%a" Gpu_sim.pp_stats sim;
    (* the temporal-blocking tradeoff, observable at runtime: what one
       step costs in exchange rounds, deep-halo bytes and redundantly
       recomputed frontier points under the configured block depth *)
    match Gpu_sim.blocked_stats sim kernels with
    | None -> ()
    | Some bs ->
        Fmt.pr "temporal blocking: T=%d, %.2f exchange op(s)/step, %.1f halo bytes/step, \
                %d redundant frontier point(s)/step@."
          bs.Gpu_sim.bs_tblock bs.Gpu_sim.bs_exchanges_per_step
          bs.Gpu_sim.bs_halo_bytes_per_step bs.Gpu_sim.bs_redundant_points
  end;
  if sanitize then begin
    List.iter (fun s -> Fmt.pr "%a@." Vgpu.Sanitizer.pp s) (Gpu_sim.sanitizers sim);
    match Gpu_sim.violations sim with
    | Some c when Vgpu.Sanitizer.total c > 0 -> exit 1
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* racs experiments *)

let cmd_experiments which =
  match which with
  | "table2" -> Harness.Experiments.table2 ()
  | "table3" -> Harness.Experiments.table3 ()
  | "fig2" -> ignore (Harness.Experiments.fig2 ())
  | "fig4" | "table4" -> ignore (Harness.Experiments.fig4 ())
  | "fig5" | "table5" -> ignore (Harness.Experiments.fig5 ())
  | "fig6" | "table6" -> ignore (Harness.Experiments.fig6 ())
  | "all" -> ignore (Harness.Experiments.all ())
  | s -> failwith (Printf.sprintf "unknown experiment %s" s)

(* ------------------------------------------------------------------ *)
(* racs host-demo / emit-c *)

let listing5_program () =
  let dims = Geometry.dims ~nx:64 ~ny:48 ~nz:40 in
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let tables = Material.tables ~n_branches:3 Material.defaults in
  let params = Params.default in
  let p name ty = Lift.Ast.named_param name ty in
  let open Lift.Host in
  let open Lift_acoustics.Programs in
  let next_g_p = p "next_g" grid_ty in
  let program =
    H_let
      ( next_g_p,
        ocl_kernel ~name:"volume" (volume ())
          [
            to_gpu (input (p "nbrs" nbrs_ty));
            to_gpu (input (p "prev" grid_ty));
            to_gpu (input (p "curr" grid_ty));
            to_gpu (input (p "next" grid_ty));
            H_int dims.Geometry.nx;
            H_int (dims.Geometry.nx * dims.Geometry.ny);
            H_real (Params.l2 params);
          ],
        to_host
          (write_to (input next_g_p)
             (ocl_kernel ~name:"boundary_fi_mm" (boundary_fi_mm ())
                [
                  to_gpu (input (p "bidx" bidx_ty));
                  input (p "nbrs" nbrs_ty);
                  to_gpu (input (p "material" material_ty));
                  to_gpu (input (p "beta" beta_ty));
                  input (p "prev" grid_ty);
                  input next_g_p;
                  H_real (Params.l params);
                ])) )
  in
  let sizes = function
    | "N" -> Some (Geometry.n_points dims)
    | "nB" -> Some (Geometry.n_boundary room)
    | "NM" -> Some (Array.length tables.Material.t_beta)
    | _ -> None
  in
  (program, sizes)

let listing5_compiled () =
  let program, sizes = listing5_program () in
  Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes program

(* Listing 5 extended to two virtual devices: per-shard kernel launches
   plus the halo exchange of the freshly written next ghost planes. *)
let sharded_host_program ?overlap () =
  let dims = Geometry.dims ~nx:64 ~ny:48 ~nz:40 in
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let plan = Shard.plan ~shards:2 room in
  let sh0 = plan.Shard.shards.(0) in
  let params = Params.default in
  let prog =
    Lift_acoustics.Programs.sharded_fi_step_host ?overlap ~nx:dims.Geometry.nx
      ~ny:dims.Geometry.ny
      ~slab_planes:(sh0.Shard.z1 - sh0.Shard.z0)
      ~l:(Params.l params) ~l2:(Params.l2 params) ~beta:0.1 ()
  in
  let sizes = function
    | "N" -> Some sh0.Shard.local_n
    | "nB" -> Some sh0.Shard.n_b
    | _ -> None
  in
  (prog, sizes)

let sharded_host_compiled () =
  let prog, sizes = sharded_host_program () in
  Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes prog

let cmd_host_demo sharded =
  let compiled = if sharded then sharded_host_compiled () else listing5_compiled () in
  Printf.printf "/* host program (%s) */\n%s\n"
    (if sharded then "Z-sharded two-device FI step" else "paper Listing 5")
    compiled.Lift.Host.source;
  List.iter
    (fun (c : Lift.Codegen.compiled) ->
      Printf.printf "%s\n" (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel))
    compiled.Lift.Host.kernels

(* Emit a complete, compilable OpenCL .c program for the Listing 5
   pipeline (cc prog.c -lOpenCL). *)
let cmd_emit_c () = print_string (Lift.Emit_c.host_program (listing5_compiled ()))

(* ------------------------------------------------------------------ *)
(* racs check: static race/bounds verdicts + host-plan lint *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cmd_check shape nx ny nz precision engine json =
  let dims = Geometry.dims ~nx ~ny ~nz in
  let n_materials = Array.length Material.defaults in
  let room = Geometry.build ~n_materials shape dims in
  let sim = Gpu_sim.create ~fi_beta:0.1 ~n_branches:3 Params.default room in
  let env = Gpu_sim.check_env sim in
  (* under --json, the human-readable stream is suppressed and every
     diagnostic is collected as a machine-readable issue instead *)
  let out : 'a. ('a, Format.formatter, unit) format -> 'a =
   fun fmt ->
    if json then Format.ifprintf Format.std_formatter fmt
    else Format.fprintf Format.std_formatter fmt
  in
  let jissues = ref [] in
  let jadd ~scope ~target ~severity ~code message =
    jissues := (scope, target, severity, code, message) :: !jissues
  in
  let jfps = ref [] in
  let strides = [| 1; nx; nx * ny |] in
  let unsafe = ref 0 and unproven = ref 0 in
  let check_one origin variant (k : Kernel_ast.Cast.kernel) =
    let r = Kernel_ast.Check.check env k in
    let fp = Kernel_ast.Footprint.infer ~strides env k in
    out "== %s (%s, %s) ==@.%a@.%a@." k.Kernel_ast.Cast.name origin variant
      Kernel_ast.Check.pp_report r Kernel_ast.Footprint.pp fp;
    jfps := (k.Kernel_ast.Cast.name, origin, variant, fp) :: !jfps;
    let target = Printf.sprintf "%s (%s, %s)" k.Kernel_ast.Cast.name origin variant in
    if not (Kernel_ast.Check.ok r) then begin
      incr unsafe;
      let bufs =
        String.concat ", "
          (List.map
             (fun (b : Kernel_ast.Check.buf_report) -> b.Kernel_ast.Check.b_name)
             (Kernel_ast.Check.unsafe_bufs r))
      in
      jadd ~scope:"kernel" ~target ~severity:"error" ~code:"static-unsafe"
        (Printf.sprintf "static verifier found an Unsafe verdict (buffers: %s)" bufs)
    end
    else if not (Kernel_ast.Check.fully_proven r) then begin
      incr unproven;
      jadd ~scope:"kernel" ~target ~severity:"warning" ~code:"static-unproven"
        "some verdicts are Unproven (covered by the runtime sanitizer)"
    end
  in
  List.iter
    (fun (origin, k) ->
      check_one origin "raw" k;
      let opt, _ = Kernel_ast.Opt.optimize k in
      check_one origin "optimized" opt)
    (all_kernels ~optimize:false precision);
  (* --engine native: also push every kernel (raw + optimized) through
     the C renderer, the system C compiler and dlopen, so the gate
     covers the compiled path, not just the static verdicts *)
  let native_failures = ref 0 in
  (if engine = `Native then
     let compile_one origin variant (k : Kernel_ast.Cast.kernel) =
       match Vgpu.Native.compile k with
       | (_ : Vgpu.Native.compiled) ->
           out "== native: %s (%s, %s) ==@.  compiled and loaded (key %s)@."
             k.Kernel_ast.Cast.name origin variant
             (String.sub (Vgpu.Native.cache_key k) 0 12)
       | exception Failure msg ->
           incr native_failures;
           jadd ~scope:"kernel"
             ~target:(Printf.sprintf "%s (%s, %s)" k.Kernel_ast.Cast.name origin variant)
             ~severity:"error" ~code:"native-compile-failed" msg;
           out "== native: %s (%s, %s) ==@.  FAILED: %s@." k.Kernel_ast.Cast.name
             origin variant msg
     in
     List.iter
       (fun (origin, k) ->
         compile_one origin "raw" k;
         let opt, _ = Kernel_ast.Opt.optimize k in
         compile_one origin "optimized" opt)
       (all_kernels ~optimize:false precision));
  (* work-group tier gate: the tiled volume kernel, raw and optimized,
     must reproduce the flat kernel bit-for-bit on every engine.  Static
     verdicts cannot prove cross-engine agreement, so this runs a short
     simulation per (engine, variant) on a small dome and compares
     buffers exactly. *)
  let tiled_failures = ref 0 in
  (let small = Geometry.build ~n_materials (Geometry.Dome : Geometry.shape)
       (Geometry.dims ~nx:11 ~ny:9 ~nz:8) in
   let flat = [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ] in
   let tiled = Lift_acoustics.Programs.tiled_volume ~precision ~tile:(4, 4) () in
   let run ~engine ~optimize kernels =
     let sim = Gpu_sim.create ~engine ~optimize ~fi_beta:0.1 ~precision Params.default small in
     let cx, cy, cz = State.centre sim.Gpu_sim.state in
     State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
     for _ = 1 to 8 do
       Gpu_sim.step sim kernels
     done;
     Gpu_sim.sync sim;
     sim.Gpu_sim.state.State.curr
   in
   let reference = run ~engine:`Interp ~optimize:true flat in
   List.iter
     (fun (ename, eng) ->
       List.iter
         (fun (vname, optimize) ->
           let got = run ~engine:eng ~optimize [ tiled; Hand_kernels.boundary_fi ~precision ] in
           let ok =
             Array.for_all2
               (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
               reference got
           in
           out "== tiled volume vs flat: %s, %s ==@.  %s@." ename vname
             (if ok then "bit-identical" else "MISMATCH");
           if not ok then begin
             incr tiled_failures;
             jadd ~scope:"kernel"
               ~target:(Printf.sprintf "tiled_volume (%s, %s)" ename vname)
               ~severity:"error" ~code:"tiled-mismatch"
               "tiled volume kernel does not reproduce the flat kernel bit-for-bit"
           end)
         [ ("raw", false); ("optimized", true) ])
     [ ("interp", `Interp); ("jit", `Jit); ("jit-parallel", `Jit_parallel 3);
       ("native", `Native) ]);
  (* host-plan lint (structure) and whole-plan dataflow verification
     (footprint-driven): the paper's host programs, plus the real
     sequential and overlapped multi-device plans of every scheme at 1-4
     shards, checked against the slab geometry they launch over *)
  let lint_errors = ref 0 in
  let lint ?(scope = "plan") label issues =
    out "== lint: %s ==@." label;
    if issues = [] then out "  clean@."
    else List.iter (fun i -> out "  %a@." Lift.Lint.pp_issue i) issues;
    List.iter
      (fun (i : Lift.Lint.issue) ->
        jadd ~scope ~target:label
          ~severity:
            (match i.Lift.Lint.severity with
            | Lift.Lint.Error -> "error"
            | Lift.Lint.Warning -> "warning")
          ~code:i.Lift.Lint.code i.Lift.Lint.message)
      issues;
    lint_errors := !lint_errors + List.length (Lift.Lint.errors issues)
  in
  lint ~scope:"host" "paper Listing 5 host program"
    (Lift.Lint.check_host (fst (listing5_program ())));
  lint ~scope:"host" "Z-sharded two-device FI step"
    (Lift.Lint.check_host (fst (sharded_host_program ())));
  lint ~scope:"host" "Z-sharded two-device FI step, event-annotated (overlap)"
    (Lift.Lint.check_host (fst (sharded_host_program ~overlap:true ())));
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  let plan_schemes =
    [
      ("fi", [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]);
      ("fi-mm",
       [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]);
      ("fd-mm",
       [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]);
      ("tiled fi",
       [ Lift_acoustics.Programs.tiled_volume ~precision ~tile:(8, 8) ();
         Hand_kernels.boundary_fi ~precision ]);
    ]
  in
  List.iter
    (fun (label, kernels) ->
      List.iter
        (fun shards ->
          let mk () =
            Gpu_sim.create ~engine:`Jit ~shards ~schedule:`Seq ~fi_beta:0.1 ~n_branches:3
              ~precision Params.default room
          in
          let ssim = mk () in
          let snx, sny, planes = Gpu_sim.slab_geometry ssim in
          let slab = { Lift.Lint.sl_nx = snx; sl_ny = sny; sl_planes = planes } in
          let plan = Gpu_sim.step_plan ssim kernels ~steps:2 in
          lint
            (Printf.sprintf "sync %s plan, %d shard(s), structure" label shards)
            (Lift.Lint.check_sharded plan);
          lint
            (Printf.sprintf "sync %s plan, %d shard(s), halo dataflow" label shards)
            (Lift.Lint.verify_plan slab plan);
          let aplan = Gpu_sim.overlap_plan (mk ()) kernels ~steps:2 in
          lint
            (Printf.sprintf "async %s plan, %d shard(s), structure" label shards)
            (Lift.Lint.check_async aplan);
          lint
            (Printf.sprintf "async %s plan, %d shard(s), halo dataflow" label shards)
            (Lift.Lint.verify_async slab aplan))
        [ 1; 2; 3; 4 ])
    plan_schemes;
  (* temporally-blocked cadences: depth-T ghost zones exchanged once per
     block, verified under the footprint dataflow checker at ~halo:T
     (sync and overlapped), plus the fused T-step kernel's plan *)
  let state_bufs = [ "g1"; "v1" ] in
  List.iter
    (fun (label, kernels_of_t) ->
      List.iter
        (fun (shards, tblock) ->
          let mk () =
            Gpu_sim.create ~engine:`Jit ~shards ~schedule:`Seq ~tblock ~fi_beta:0.1
              ~n_branches:3 ~precision Params.default room
          in
          let ssim = mk () in
          let t = Gpu_sim.tblock ssim in
          let kernels = kernels_of_t t in
          let snx, sny, planes = Gpu_sim.slab_geometry ssim in
          let slab = { Lift.Lint.sl_nx = snx; sl_ny = sny; sl_planes = planes } in
          lint
            (Printf.sprintf "blocked sync %s plan, %d shard(s), T=%d, halo dataflow" label
               shards t)
            (Lift.Lint.verify_plan ~halo:t ~state_bufs slab
               (Gpu_sim.step_plan ssim kernels ~steps:(2 * t)));
          lint
            (Printf.sprintf "blocked async %s plan, %d shard(s), T=%d, halo dataflow" label
               shards t)
            (Lift.Lint.verify_async ~halo:t ~state_bufs slab
               (Gpu_sim.overlap_plan (mk ()) kernels ~steps:(2 * t))))
        [ (2, 2); (3, 3) ])
    (List.map (fun (label, kernels) -> (label, fun _ -> kernels)) plan_schemes
    @ [ ("fused fi",
         fun t -> [ Lift_acoustics.Programs.blocked_volume ~precision ~tblock:t () ]) ]);
  out
    "@.%d kernel report(s) unsafe, %d unproven (sanitizer-covered), %d lint error(s), %d \
     tiled conformance failure(s)%s@."
    !unsafe !unproven !lint_errors !tiled_failures
    (if engine = `Native then Printf.sprintf ", %d native compile failure(s)" !native_failures
     else "");
  if json then begin
    let b = Buffer.create 8192 in
    let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    p "{\n  \"issues\": [";
    List.iteri
      (fun idx (scope, target, severity, code, msg) ->
        p "%s\n    { \"scope\": \"%s\", \"target\": \"%s\", \"severity\": \"%s\", \
           \"code\": \"%s\", \"message\": \"%s\" }"
          (if idx = 0 then "" else ",")
          (json_escape scope) (json_escape target) severity (json_escape code)
          (json_escape msg))
      (List.rev !jissues);
    p "\n  ],\n  \"footprints\": [";
    let axes_json = function
      | None -> "null"
      | Some axes ->
          "["
          ^ String.concat ", "
              (Array.to_list
                 (Array.map
                    (fun (a : Kernel_ast.Footprint.axis) ->
                      Printf.sprintf "[%d, %d]" a.Kernel_ast.Footprint.ax_lo
                        a.Kernel_ast.Footprint.ax_hi)
                    axes))
          ^ "]"
    in
    List.iteri
      (fun idx (kname, origin, variant, (fp : Kernel_ast.Footprint.t)) ->
        let bufs =
          String.concat ", "
            (List.map
               (fun (fb : Kernel_ast.Footprint.buf) ->
                 Printf.sprintf
                   "{ \"name\": \"%s\", \"read\": %s, \"write\": %s, \"exact\": %b }"
                   (json_escape fb.Kernel_ast.Footprint.fb_name)
                   (axes_json (Kernel_ast.Footprint.read_rel fp fb.Kernel_ast.Footprint.fb_name))
                   (axes_json (Kernel_ast.Footprint.write_rel fp fb.Kernel_ast.Footprint.fb_name))
                   fb.Kernel_ast.Footprint.fb_exact)
               fp.Kernel_ast.Footprint.fp_bufs)
        in
        p "%s\n    { \"kernel\": \"%s\", \"origin\": \"%s\", \"variant\": \"%s\", \
           \"anchor\": %s, \"bufs\": [%s] }"
          (if idx = 0 then "" else ",")
          (json_escape kname) (json_escape origin) (json_escape variant)
          (match fp.Kernel_ast.Footprint.fp_anchor with
          | None -> "null"
          | Some a -> Printf.sprintf "\"%s\"" (json_escape a))
          bufs)
      (List.rev !jfps);
    p
      "\n  ],\n  \"summary\": { \"unsafe\": %d, \"unproven\": %d, \"lint_errors\": %d, \
       \"tiled_failures\": %d, \"native_failures\": %d }\n}\n"
      !unsafe !unproven !lint_errors !tiled_failures !native_failures;
    print_string (Buffer.contents b)
  end;
  if !unsafe > 0 || !lint_errors > 0 || !native_failures > 0 || !tiled_failures > 0 then
    exit 1

(* ------------------------------------------------------------------ *)
(* racs tune: the measured autotuner (and, with --model, the paper's
   §VI model-only work-group sweep it grew out of) *)

let cmd_tune_model shape scheme =
  let precision = Kernel_ast.Cast.Double in
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  let kernel, kind =
    match scheme with
    | "fi" -> (Hand_kernels.fused_fi ~precision, Harness.Workloads.Fused)
    | "fi-mm" -> (Hand_kernels.boundary_fi_mm ~precision ~betas, Harness.Workloads.Boundary 0)
    | "fd-mm" -> (Hand_kernels.boundary_fd_mm ~precision ~mb:3, Harness.Workloads.Boundary 3)
    | "volume" -> (Hand_kernels.volume ~precision, Harness.Workloads.Volume)
    | s -> failwith (Printf.sprintf "unknown scheme %s (fi | volume | fi-mm | fd-mm)" s)
  in
  Printf.printf "work-group tuning, %s kernel, %s rooms (model)\n\n" scheme
    (Geometry.shape_label shape);
  List.iter
    (fun device ->
      List.iter
        (fun dims ->
          let w = Harness.Workloads.workload kind shape dims in
          let r = Harness.Tuner.tune ~device kernel w in
          Printf.printf "%-12s %-6s" device.Vgpu.Device.name (Geometry.size_label dims);
          List.iter
            (fun (ls, t) -> Printf.printf "  ws=%d:%.3fms" ls (t *. 1e3))
            r.Harness.Tuner.sweep;
          Printf.printf "  best=%d\n" r.Harness.Tuner.best_size)
        Geometry.paper_sizes)
    Vgpu.Device.all

let tune_result_json (r : Harness.Autotune.result) =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let plan_json (pl : Harness.Plan_cache.plan) =
    Printf.sprintf
      "{ \"label\": \"%s\", \"tile\": %s, \"variant\": [%s], \"local\": %d, \
       \"unroll\": %s, \"shards\": %d, \"schedule\": \"%s\", \"tblock\": %d }"
      (json_escape (Harness.Autotune.plan_label pl))
      (match pl.Harness.Plan_cache.pl_tile with
      | None -> "null"
      | Some (w, h) -> Printf.sprintf "[%d, %d]" w h)
      (String.concat ", "
         (List.map
            (fun rname -> Printf.sprintf "\"%s\"" (json_escape rname))
            pl.Harness.Plan_cache.pl_variant))
      pl.Harness.Plan_cache.pl_local
      (match pl.Harness.Plan_cache.pl_unroll with
      | None -> "null"
      | Some n -> string_of_int n)
      pl.Harness.Plan_cache.pl_shards
      (match pl.Harness.Plan_cache.pl_schedule with
      | `Seq -> "seq"
      | `Concurrent -> "concurrent"
      | `Overlap -> "overlap")
      pl.Harness.Plan_cache.pl_tblock
  in
  let k = r.Harness.Autotune.r_key in
  let x, y, z = k.Harness.Plan_cache.k_dims in
  let e = r.Harness.Autotune.r_entry in
  p "{\n";
  p "  \"bench\": \"autotune\",\n";
  p "  \"key\": { \"scheme\": %S, \"shape\": %S, \"dims\": [%d, %d, %d], \
     \"precision\": %S, \"device\": %S, \"engine\": %S, \"digest\": %S },\n"
    k.Harness.Plan_cache.k_scheme k.Harness.Plan_cache.k_shape x y z
    k.Harness.Plan_cache.k_precision k.Harness.Plan_cache.k_device
    k.Harness.Plan_cache.k_engine k.Harness.Plan_cache.k_digest;
  p "  \"from_cache\": %b,\n" r.Harness.Autotune.r_from_cache;
  p "  \"candidates\": %d,\n" r.Harness.Autotune.r_candidates;
  p "  \"measurements\": %d,\n" r.Harness.Autotune.r_measurements;
  p "  \"winner\": %s,\n" (plan_json e.Harness.Plan_cache.e_plan);
  p "  \"winner_predicted_ns\": %.0f,\n" (e.Harness.Plan_cache.e_predicted_s *. 1e9);
  p "  \"winner_measured_ns\": %.0f,\n" (e.Harness.Plan_cache.e_measured_s *. 1e9);
  p "  \"default_measured_ns\": %.0f,\n" (e.Harness.Plan_cache.e_default_s *. 1e9);
  p "  \"samples\": %d,\n" e.Harness.Plan_cache.e_samples;
  p "  \"evaluated\": [\n";
  let n = List.length r.Harness.Autotune.r_evaluated in
  List.iteri
    (fun i (m : Harness.Autotune.measured) ->
      p
        "    { \"plan\": %s, \"predicted_ns\": %.0f, \"measured_ns\": %.0f, \
         \"bit_identical\": %b }%s\n"
        (plan_json m.Harness.Autotune.m_plan)
        (m.Harness.Autotune.m_predicted_s *. 1e9)
        (m.Harness.Autotune.m_measured_s *. 1e9)
        m.Harness.Autotune.m_identical
        (if i = n - 1 then "" else ","))
    r.Harness.Autotune.r_evaluated;
  p "  ]\n}\n";
  Buffer.contents b

let cmd_tune shape scheme nx ny nz engine domains json smoke no_cache model
    max_shards topk repeats steps warmup tune_domains explore_depth =
  if model then cmd_tune_model shape scheme
  else begin
    let engine : Harness.Autotune.engine =
      match engine with
      | `Interp -> `Interp
      | `Jit -> `Jit
      | `Jit_parallel -> `Jit_parallel domains
      | `Native -> `Native
    in
    (* --smoke: a small room and short measurement intervals — enough to
       exercise the full pipeline (and warm the cache) in CI seconds *)
    let dims, topk, repeats, steps, warmup, explore_depth =
      if smoke then (Geometry.dims ~nx:16 ~ny:12 ~nz:10, 4, 2, 4, 1, 1)
      else (Geometry.dims ~nx ~ny ~nz, topk, repeats, steps, warmup, explore_depth)
    in
    let r =
      Harness.Autotune.tune ~engine ~topk ~warmup ~repeats ~steps ~max_shards
        ~domains:tune_domains ~use_cache:(not no_cache) ~explore_depth ~scheme
        ~shape ~dims ()
    in
    if json then print_string (tune_result_json r)
    else begin
      let e = r.Harness.Autotune.r_entry in
      Printf.printf
        "autotune: %s %s %dx%dx%d (%s engine): %d candidates, %d pruned in, %d measured%s\n"
        scheme (Geometry.shape_label shape) dims.Geometry.nx dims.Geometry.ny
        dims.Geometry.nz
        (Harness.Autotune.engine_label engine)
        r.Harness.Autotune.r_candidates
        (List.length r.Harness.Autotune.r_evaluated)
        r.Harness.Autotune.r_measurements
        (if r.Harness.Autotune.r_from_cache then " (warm plan cache)" else "");
      if r.Harness.Autotune.r_evaluated <> [] then begin
        Printf.printf "%-44s %14s %14s %6s\n" "plan" "predicted ns" "measured ns" "ident";
        List.iter
          (fun (m : Harness.Autotune.measured) ->
            Printf.printf "%-44s %14.0f %14.0f %6b\n"
              (Harness.Autotune.plan_label m.Harness.Autotune.m_plan)
              (m.Harness.Autotune.m_predicted_s *. 1e9)
              (m.Harness.Autotune.m_measured_s *. 1e9)
              m.Harness.Autotune.m_identical)
          r.Harness.Autotune.r_evaluated
      end;
      Printf.printf "winner: %s\n"
        (Harness.Autotune.plan_label e.Harness.Plan_cache.e_plan);
      Printf.printf
        "  measured %.0f ns/step vs default %.0f ns/step (%.2fx), predicted %.0f ns/step\n"
        (e.Harness.Plan_cache.e_measured_s *. 1e9)
        (e.Harness.Plan_cache.e_default_s *. 1e9)
        (e.Harness.Plan_cache.e_measured_s /. e.Harness.Plan_cache.e_default_s)
        (e.Harness.Plan_cache.e_predicted_s *. 1e9);
      if not no_cache then
        Printf.printf "plan cache: %s\n" (Harness.Plan_cache.cache_dir ())
    end
  end

(* ------------------------------------------------------------------ *)

let precision_arg =
  Arg.(value & opt precision_conv Kernel_ast.Cast.Double & info [ "precision" ] ~doc:"single or double")

let no_opt_arg =
  Arg.(
    value & flag
    & info [ "no-opt" ] ~doc:"disable the kernel-AST optimizer pipeline (CSE, LICM, unrolling)")

let kernels_cmd =
  Cmd.v (Cmd.info "kernels" ~doc:"Dump generated and hand-written OpenCL kernels")
    Term.(const cmd_kernels $ precision_arg $ no_opt_arg)

let simulate_cmd =
  let shape = Arg.(value & opt shape_conv Geometry.Box & info [ "shape" ] ~doc:"box, dome or l-shape") in
  let nx = Arg.(value & opt int 40 & info [ "nx" ]) in
  let ny = Arg.(value & opt int 32 & info [ "ny" ]) in
  let nz = Arg.(value & opt int 24 & info [ "nz" ]) in
  let scheme = Arg.(value & opt string "fd-mm" & info [ "scheme" ] ~doc:"fi | fi-mm | fd-mm") in
  let steps = Arg.(value & opt int 200 & info [ "steps" ]) in
  let backend_conv =
    Arg.conv
      ( (function
        | "hand" -> Ok `Hand
        | "lift" -> Ok `Lift
        | s -> Error (`Msg (Printf.sprintf "unknown backend %s" s))),
        fun ppf b -> Fmt.string ppf (match b with `Hand -> "hand" | `Lift -> "lift") )
  in
  let backend =
    Arg.(value & opt backend_conv `Lift & info [ "backend" ] ~doc:"hand or lift")
  in
  let engine_conv =
    Arg.conv
      ( (function
        | "interp" -> Ok `Interp
        | "jit" -> Ok `Jit
        | "jit-parallel" -> Ok `Jit_parallel
        | "native" -> Ok `Native
        | s -> Error (`Msg (Printf.sprintf "unknown engine %s" s))),
        fun ppf e ->
          Fmt.string ppf
            (match e with
            | `Interp -> "interp"
            | `Jit -> "jit"
            | `Jit_parallel -> "jit-parallel"
            | `Native -> "native") )
  in
  let engine =
    Arg.(
      value & opt engine_conv `Jit
      & info [ "engine" ] ~doc:"virtual-GPU engine: interp, jit, jit-parallel or native")
  in
  let domains =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "domains" ] ~doc:"domains for --engine jit-parallel")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:"Z-shard the grid over this many virtual devices (0 = single device)")
  in
  let tblock =
    Arg.(
      value & opt int 1
      & info [ "tblock" ] ~docv:"T"
          ~doc:
            "sharded runs: temporal block depth — allocate depth-T ghost zones, \
             recompute frontier planes redundantly, and exchange halos once per T steps \
             instead of every step (bit-identical results; clamped to the thinnest slab)")
  in
  let overlap =
    Arg.(
      value & flag
      & info [ "overlap" ]
          ~doc:
            "sharded runs: per-device async command queues with interior/frontier split \
             — halo exchanges overlap interior compute and steps pipeline (bit-identical \
             results; falls back to the sequential schedule under --sanitize)")
  in
  let no_overlap =
    Arg.(
      value & flag
      & info [ "no-overlap" ]
          ~doc:"sharded runs: force the strictly sequential per-device schedule")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"print per-kernel launch statistics")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "run on the shadow-memory checked interpreter (races, OOB, uninitialised \
             reads); nonzero exit on any violation")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"statically verify every launched kernel first (fail fast on Unsafe)")
  in
  let tile =
    Arg.(
      value
      & opt (some string) None
      & info [ "tile" ] ~docv:"WxH"
          ~doc:
            "run the volume kernel through the work-group execution tier: a 2.5D-tiled \
             stencil staging WxH tiles of curr in local memory (bit-identical results)")
  in
  let tuned =
    Arg.(
      value & flag
      & info [ "tuned" ]
          ~doc:
            "run the autotuner's cached best plan for this workload (kernel form, \
             unroll budget, shards, schedule — overrides --backend/--tile/--shards); \
             tunes first if the plan cache is cold")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run an impulse-response simulation")
    Term.(
      const cmd_simulate $ shape $ nx $ ny $ nz $ scheme $ steps $ backend $ engine
      $ domains $ shards $ tblock $ overlap $ no_overlap $ no_opt_arg $ stats $ sanitize
      $ verify $ tile $ tuned)

let experiments_cmd =
  let which = Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT") in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate paper tables/figures (table2 table3 fig2 fig4 fig5 fig6 all)")
    Term.(const cmd_experiments $ which)

let host_demo_cmd =
  let sharded =
    Arg.(
      value & flag
      & info [ "sharded" ] ~doc:"show the Z-sharded two-device step instead")
  in
  Cmd.v (Cmd.info "host-demo" ~doc:"Show the compiled host program of paper Listing 5")
    Term.(const cmd_host_demo $ sharded)

let check_cmd =
  let shape = Arg.(value & opt shape_conv Geometry.Box & info [ "shape" ] ~doc:"box, dome or l-shape") in
  let nx = Arg.(value & opt int 40 & info [ "nx" ]) in
  let ny = Arg.(value & opt int 32 & info [ "ny" ]) in
  let nz = Arg.(value & opt int 24 & info [ "nz" ]) in
  let engine_conv =
    Arg.conv
      ( (function
        | "interp" -> Ok `Interp
        | "native" -> Ok `Native
        | s -> Error (`Msg (Printf.sprintf "unknown check engine %s (interp | native)" s))),
        fun ppf e -> Fmt.string ppf (match e with `Interp -> "interp" | `Native -> "native") )
  in
  let engine =
    Arg.(
      value & opt engine_conv `Interp
      & info [ "engine" ]
          ~doc:"with native, also compile every kernel through the C backend (cc + dlopen)")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "machine-readable JSON on stdout: every diagnostic as an issue object \
             (scope, target, severity, code, message) plus per-kernel footprints; \
             nonzero exit on error-severity issues")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static race/bounds verdicts and stencil footprints for every kernel (raw + \
          optimized + tiled), host-plan lint, and footprint-driven halo/dataflow \
          verification of the 1-4-shard sync and async plans; nonzero exit on Unsafe or \
          lint errors")
    Term.(const cmd_check $ shape $ nx $ ny $ nz $ precision_arg $ engine $ json)

let tune_cmd =
  let shape = Arg.(value & opt shape_conv Geometry.Box & info [ "shape" ] ~doc:"box, dome or l-shape") in
  let scheme = Arg.(value & opt string "fd-mm" & info [ "scheme" ] ~doc:"fi | fi-mm | fd-mm (--model also: volume)") in
  let nx = Arg.(value & opt int 24 & info [ "nx" ]) in
  let ny = Arg.(value & opt int 20 & info [ "ny" ]) in
  let nz = Arg.(value & opt int 16 & info [ "nz" ]) in
  let engine_conv =
    Arg.conv
      ( (function
        | "interp" -> Ok `Interp
        | "jit" -> Ok `Jit
        | "jit-parallel" -> Ok `Jit_parallel
        | "native" -> Ok `Native
        | s -> Error (`Msg (Printf.sprintf "unknown engine %s" s))),
        fun ppf e ->
          Fmt.string ppf
            (match e with
            | `Interp -> "interp"
            | `Jit -> "jit"
            | `Jit_parallel -> "jit-parallel"
            | `Native -> "native") )
  in
  let engine =
    Arg.(
      value & opt engine_conv `Native
      & info [ "engine" ] ~doc:"engine to measure on: interp, jit, jit-parallel or native")
  in
  let domains =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "domains" ] ~doc:"domains for --engine jit-parallel")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"machine-readable JSON on stdout") in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"small room, short measurement intervals — the CI configuration")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"bypass the plan cache: always search, never persist")
  in
  let model =
    Arg.(
      value & flag
      & info [ "model" ]
          ~doc:
            "model-only work-group sweep per paper device and room (the paper §VI \
             protocol; no measurement, no cache)")
  in
  let max_shards =
    Arg.(value & opt int 2 & info [ "max-shards" ] ~doc:"largest shard count to consider")
  in
  let topk =
    Arg.(value & opt int 8 & info [ "topk" ] ~doc:"candidates surviving the model pruning")
  in
  let repeats =
    Arg.(value & opt int 5 & info [ "repeats" ] ~doc:"timed intervals per candidate (median)")
  in
  let steps = Arg.(value & opt int 20 & info [ "steps" ] ~doc:"simulation steps per interval") in
  let warmup = Arg.(value & opt int 2 & info [ "warmup" ] ~doc:"untimed warmup steps") in
  let tune_domains =
    Arg.(
      value & opt int 1
      & info [ "tune-domains" ]
          ~doc:"measure candidates in parallel over this many OCaml domains")
  in
  let explore_depth =
    Arg.(
      value & opt int 2
      & info [ "explore-depth" ]
          ~doc:"rewrite-exploration depth for variant candidates (0 disables)")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Measured autotuning over kernel form x unroll budget x work-group size x \
          shards x schedule, with a persistent best-plan cache (racs simulate --tuned \
          replays the winner)")
    Term.(
      const cmd_tune $ shape $ scheme $ nx $ ny $ nz $ engine $ domains $ json $ smoke
      $ no_cache $ model $ max_shards $ topk $ repeats $ steps $ warmup $ tune_domains
      $ explore_depth)

let emit_c_cmd =
  Cmd.v
    (Cmd.info "emit-c"
       ~doc:"Emit a complete OpenCL .c program for the Listing 5 pipeline")
    Term.(const cmd_emit_c $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "racs" ~version:"1.0.0"
             ~doc:"Room acoustics simulations with complex boundary conditions via Lift-style code generation")
          [ kernels_cmd; simulate_cmd; check_cmd; experiments_cmd; host_demo_cmd;
            emit_c_cmd; tune_cmd ]))
