(* racs — room acoustics code-generation studio.

   Command-line front end over the library:
     racs kernels      dump the generated OpenCL (and hand-written
                       baselines) for every kernel
     racs simulate     run an impulse-response simulation on a box/dome
     racs check        static race/bounds verdicts for every kernel
                       (raw + optimized) plus host-plan lint
     racs experiments  regenerate any of the paper's tables/figures
     racs host-demo    show the compiled host program of paper Listing 5 *)

open Cmdliner
open Acoustics

let precision_conv =
  let parse = function
    | "single" -> Ok Kernel_ast.Cast.Single
    | "double" -> Ok Kernel_ast.Cast.Double
    | s -> Error (`Msg (Printf.sprintf "unknown precision %s" s))
  in
  let print ppf p =
    Fmt.string ppf (match p with Kernel_ast.Cast.Single -> "single" | Double -> "double")
  in
  Arg.conv (parse, print)

let shape_conv =
  let parse = function
    | "box" -> Ok Geometry.Box
    | "dome" -> Ok Geometry.Dome
    | "l-shape" -> Ok Geometry.L_shape
    | s -> Error (`Msg (Printf.sprintf "unknown shape %s" s))
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Geometry.shape_label s))

(* ------------------------------------------------------------------ *)
(* racs kernels *)

let all_kernels ~optimize precision =
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  let lift name prog =
    (Lift_acoustics.Programs.compile ~name ~optimize ~precision prog).Lift.Codegen.kernel
  in
  [
    ("hand-written", Hand_kernels.fused_fi ~precision);
    ("hand-written", Hand_kernels.volume ~precision);
    ("hand-written", Hand_kernels.boundary_fi ~precision);
    ("hand-written", Hand_kernels.boundary_fi_mm ~precision ~betas);
    ("hand-written", Hand_kernels.boundary_fd_mm ~precision ~mb:3);
    ("lift-generated", lift "lift_fused_fi" (Lift_acoustics.Programs.fused_fi ()));
    ("lift-generated", lift "lift_volume" (Lift_acoustics.Programs.volume ()));
    ("lift-generated", lift "lift_boundary_fi" (Lift_acoustics.Programs.boundary_fi ()));
    ("lift-generated", lift "lift_boundary_fi_mm" (Lift_acoustics.Programs.boundary_fi_mm ()));
    ("lift-generated", lift "lift_boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ()));
    ("lift-generated (slide3/pad3 composition)",
      lift "lift_fused_fi_3d" (Lift_acoustics.Programs.fused_fi_3d ()));
    ("work-group tier (2.5D tiled)",
      Lift_acoustics.Programs.tiled_volume ~precision ~tile:(8, 8) ());
  ]

let cmd_kernels precision no_opt =
  List.iter
    (fun (origin, k) ->
      Printf.printf "/* %s, %s precision */\n%s\n" origin
        (match k.Kernel_ast.Cast.precision with Single -> "single" | Double -> "double")
        (Kernel_ast.Print.kernel_to_string k))
    (all_kernels ~optimize:(not no_opt) precision)

(* ------------------------------------------------------------------ *)
(* racs simulate *)

(* "--tile WxH" parser: the work-group tile of the 2.5D volume kernel. *)
let parse_tile s =
  match String.split_on_char 'x' (String.lowercase_ascii s) with
  | [ w; h ] -> (
      match (int_of_string_opt w, int_of_string_opt h) with
      | Some w, Some h when w > 0 && h > 0 -> Some (w, h)
      | _ -> None)
  | _ -> None

let cmd_simulate shape nx ny nz scheme steps backend engine domains shards overlap
    no_overlap no_opt show_stats sanitize verify tile =
  let params = Params.default in
  let dims = Geometry.dims ~nx ~ny ~nz in
  let n_materials = Array.length Material.defaults in
  let room = Geometry.build ~n_materials shape dims in
  let precision = Kernel_ast.Cast.Double in
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  (* Compile without optimizing: the runtime optimizes at dispatch, so the
     per-kernel reports show up under --stats (and --no-opt disables it). *)
  let lift name prog =
    (Lift_acoustics.Programs.compile ~name ~optimize:false ~precision prog).Lift.Codegen.kernel
  in
  let kernels =
    match (scheme, backend) with
    | "fi", `Hand ->
        [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
    | "fi", `Lift ->
        [ lift "volume" (Lift_acoustics.Programs.volume ());
          lift "boundary_fi" (Lift_acoustics.Programs.boundary_fi ()) ]
    | "fi-mm", `Hand ->
        [ Hand_kernels.volume ~precision;
          Hand_kernels.boundary_fi_mm ~precision ~betas ]
    | "fi-mm", `Lift ->
        [ lift "volume" (Lift_acoustics.Programs.volume ());
          lift "boundary_fi_mm" (Lift_acoustics.Programs.boundary_fi_mm ()) ]
    | "fd-mm", `Hand ->
        [ Hand_kernels.volume ~precision;
          Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
    | "fd-mm", `Lift ->
        [ lift "volume" (Lift_acoustics.Programs.volume ());
          lift "boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ()) ]
    | s, _ -> failwith (Printf.sprintf "unknown scheme %s (fi | fi-mm | fd-mm)" s)
  in
  (* --tile WxH: swap the flat volume kernel for the 2.5D work-group
     tiled one (bit-identical results, local-memory execution tier) *)
  let kernels =
    match tile with
    | None -> kernels
    | Some spec -> (
        match parse_tile spec with
        | None ->
            Fmt.epr "racs: --tile expects WxH with positive integers, got %s@." spec;
            exit 2
        | Some (tw, th) ->
            Lift_acoustics.Programs.tiled_volume ~precision ~tile:(tw, th) ()
            :: List.tl kernels)
  in
  let engine : Gpu_sim.engine =
    match engine with
    | `Interp -> `Interp
    | `Jit -> `Jit
    | `Jit_parallel -> `Jit_parallel domains
    | `Native -> `Native
  in
  let shards = if shards > 0 then Some shards else None in
  let schedule : Gpu_sim.schedule option =
    match (overlap, no_overlap) with
    | true, true ->
        Fmt.epr "racs: --overlap and --no-overlap are mutually exclusive@.";
        exit 2
    | true, false -> Some `Overlap
    | false, true -> Some `Seq
    | false, false -> None
  in
  let sim =
    Gpu_sim.create ~engine ~optimize:(not no_opt) ?shards ?schedule ~fi_beta:0.1
      ~n_branches:3
      ?verify:(if verify then Some true else None)
      ~sanitize params room
  in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  let rx = cx + ((nx - 2) / 4) in
  let response = Gpu_sim.run sim kernels ~steps ~receiver:(rx, cy, cz) in
  Gpu_sim.sync sim;
  Printf.printf "room %s %dx%dx%d, %d boundary points, %d steps (%s kernels, %s engine%s)\n"
    (Geometry.shape_label shape) nx ny nz (Geometry.n_boundary room) steps
    (match backend with `Hand -> "hand-written" | `Lift -> "lift-generated")
    (match engine with
    | `Interp -> "interp"
    | `Jit -> "jit"
    | `Jit_parallel d -> Printf.sprintf "jit-parallel[%d]" d
    | `Native -> "native")
    ((match shards with
     | None -> ""
     | Some _ ->
         Printf.sprintf ", %d Z-shards%s" (Gpu_sim.n_shards sim)
           (match Gpu_sim.schedule sim with
           | Some `Overlap -> ", overlapped async queues"
           | Some `Seq -> ", sequential schedule"
           | _ -> ""))
    ^ match tile with None -> "" | Some t -> Printf.sprintf ", tiled volume %s" t);
  Printf.printf "receiver at (%d,%d,%d); first samples:\n " rx cy cz;
  Array.iteri (fun i v -> if i < 12 then Printf.printf " %+.5f" v) response;
  let e = Energy.kinetic_energy sim.Gpu_sim.state in
  Printf.printf "\nfinal kinetic energy %.6g, dc offset %.6g, peak |u| %.4f\n" e
    (Energy.dc_offset sim.Gpu_sim.state)
    (Energy.max_abs sim.Gpu_sim.state.State.curr);
  if show_stats then Fmt.pr "\n%a" Gpu_sim.pp_stats sim;
  if sanitize then begin
    List.iter (fun s -> Fmt.pr "%a@." Vgpu.Sanitizer.pp s) (Gpu_sim.sanitizers sim);
    match Gpu_sim.violations sim with
    | Some c when Vgpu.Sanitizer.total c > 0 -> exit 1
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* racs experiments *)

let cmd_experiments which =
  match which with
  | "table2" -> Harness.Experiments.table2 ()
  | "table3" -> Harness.Experiments.table3 ()
  | "fig2" -> ignore (Harness.Experiments.fig2 ())
  | "fig4" | "table4" -> ignore (Harness.Experiments.fig4 ())
  | "fig5" | "table5" -> ignore (Harness.Experiments.fig5 ())
  | "fig6" | "table6" -> ignore (Harness.Experiments.fig6 ())
  | "all" -> ignore (Harness.Experiments.all ())
  | s -> failwith (Printf.sprintf "unknown experiment %s" s)

(* ------------------------------------------------------------------ *)
(* racs host-demo / emit-c *)

let listing5_program () =
  let dims = Geometry.dims ~nx:64 ~ny:48 ~nz:40 in
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let tables = Material.tables ~n_branches:3 Material.defaults in
  let params = Params.default in
  let p name ty = Lift.Ast.named_param name ty in
  let open Lift.Host in
  let open Lift_acoustics.Programs in
  let next_g_p = p "next_g" grid_ty in
  let program =
    H_let
      ( next_g_p,
        ocl_kernel ~name:"volume" (volume ())
          [
            to_gpu (input (p "nbrs" nbrs_ty));
            to_gpu (input (p "prev" grid_ty));
            to_gpu (input (p "curr" grid_ty));
            to_gpu (input (p "next" grid_ty));
            H_int dims.Geometry.nx;
            H_int (dims.Geometry.nx * dims.Geometry.ny);
            H_real (Params.l2 params);
          ],
        to_host
          (write_to (input next_g_p)
             (ocl_kernel ~name:"boundary_fi_mm" (boundary_fi_mm ())
                [
                  to_gpu (input (p "bidx" bidx_ty));
                  input (p "nbrs" nbrs_ty);
                  to_gpu (input (p "material" material_ty));
                  to_gpu (input (p "beta" beta_ty));
                  input (p "prev" grid_ty);
                  input next_g_p;
                  H_real (Params.l params);
                ])) )
  in
  let sizes = function
    | "N" -> Some (Geometry.n_points dims)
    | "nB" -> Some (Geometry.n_boundary room)
    | "NM" -> Some (Array.length tables.Material.t_beta)
    | _ -> None
  in
  (program, sizes)

let listing5_compiled () =
  let program, sizes = listing5_program () in
  Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes program

(* Listing 5 extended to two virtual devices: per-shard kernel launches
   plus the halo exchange of the freshly written next ghost planes. *)
let sharded_host_program ?overlap () =
  let dims = Geometry.dims ~nx:64 ~ny:48 ~nz:40 in
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let plan = Shard.plan ~shards:2 room in
  let sh0 = plan.Shard.shards.(0) in
  let params = Params.default in
  let prog =
    Lift_acoustics.Programs.sharded_fi_step_host ?overlap ~nx:dims.Geometry.nx
      ~ny:dims.Geometry.ny
      ~slab_planes:(sh0.Shard.z1 - sh0.Shard.z0)
      ~l:(Params.l params) ~l2:(Params.l2 params) ~beta:0.1 ()
  in
  let sizes = function
    | "N" -> Some sh0.Shard.local_n
    | "nB" -> Some sh0.Shard.n_b
    | _ -> None
  in
  (prog, sizes)

let sharded_host_compiled () =
  let prog, sizes = sharded_host_program () in
  Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes prog

let cmd_host_demo sharded =
  let compiled = if sharded then sharded_host_compiled () else listing5_compiled () in
  Printf.printf "/* host program (%s) */\n%s\n"
    (if sharded then "Z-sharded two-device FI step" else "paper Listing 5")
    compiled.Lift.Host.source;
  List.iter
    (fun (c : Lift.Codegen.compiled) ->
      Printf.printf "%s\n" (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel))
    compiled.Lift.Host.kernels

(* Emit a complete, compilable OpenCL .c program for the Listing 5
   pipeline (cc prog.c -lOpenCL). *)
let cmd_emit_c () = print_string (Lift.Emit_c.host_program (listing5_compiled ()))

(* ------------------------------------------------------------------ *)
(* racs check: static race/bounds verdicts + host-plan lint *)

let cmd_check shape nx ny nz precision engine =
  let dims = Geometry.dims ~nx ~ny ~nz in
  let n_materials = Array.length Material.defaults in
  let room = Geometry.build ~n_materials shape dims in
  let sim = Gpu_sim.create ~fi_beta:0.1 ~n_branches:3 Params.default room in
  let env = Gpu_sim.check_env sim in
  let unsafe = ref 0 and unproven = ref 0 in
  let check_one origin variant (k : Kernel_ast.Cast.kernel) =
    let r = Kernel_ast.Check.check env k in
    Fmt.pr "== %s (%s, %s) ==@.%a@." k.Kernel_ast.Cast.name origin variant
      Kernel_ast.Check.pp_report r;
    if not (Kernel_ast.Check.ok r) then incr unsafe
    else if not (Kernel_ast.Check.fully_proven r) then incr unproven
  in
  List.iter
    (fun (origin, k) ->
      check_one origin "raw" k;
      let opt, _ = Kernel_ast.Opt.optimize k in
      check_one origin "optimized" opt)
    (all_kernels ~optimize:false precision);
  (* --engine native: also push every kernel (raw + optimized) through
     the C renderer, the system C compiler and dlopen, so the gate
     covers the compiled path, not just the static verdicts *)
  let native_failures = ref 0 in
  (if engine = `Native then
     let compile_one origin variant (k : Kernel_ast.Cast.kernel) =
       match Vgpu.Native.compile k with
       | (_ : Vgpu.Native.compiled) ->
           Fmt.pr "== native: %s (%s, %s) ==@.  compiled and loaded (key %s)@."
             k.Kernel_ast.Cast.name origin variant
             (String.sub (Vgpu.Native.cache_key k) 0 12)
       | exception Failure msg ->
           incr native_failures;
           Fmt.pr "== native: %s (%s, %s) ==@.  FAILED: %s@." k.Kernel_ast.Cast.name
             origin variant msg
     in
     List.iter
       (fun (origin, k) ->
         compile_one origin "raw" k;
         let opt, _ = Kernel_ast.Opt.optimize k in
         compile_one origin "optimized" opt)
       (all_kernels ~optimize:false precision));
  (* work-group tier gate: the tiled volume kernel, raw and optimized,
     must reproduce the flat kernel bit-for-bit on every engine.  Static
     verdicts cannot prove cross-engine agreement, so this runs a short
     simulation per (engine, variant) on a small dome and compares
     buffers exactly. *)
  let tiled_failures = ref 0 in
  (let small = Geometry.build ~n_materials (Geometry.Dome : Geometry.shape)
       (Geometry.dims ~nx:11 ~ny:9 ~nz:8) in
   let flat = [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ] in
   let tiled = Lift_acoustics.Programs.tiled_volume ~precision ~tile:(4, 4) () in
   let run ~engine ~optimize kernels =
     let sim = Gpu_sim.create ~engine ~optimize ~fi_beta:0.1 ~precision Params.default small in
     let cx, cy, cz = State.centre sim.Gpu_sim.state in
     State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
     for _ = 1 to 8 do
       Gpu_sim.step sim kernels
     done;
     Gpu_sim.sync sim;
     sim.Gpu_sim.state.State.curr
   in
   let reference = run ~engine:`Interp ~optimize:true flat in
   List.iter
     (fun (ename, eng) ->
       List.iter
         (fun (vname, optimize) ->
           let got = run ~engine:eng ~optimize [ tiled; Hand_kernels.boundary_fi ~precision ] in
           let ok =
             Array.for_all2
               (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
               reference got
           in
           Fmt.pr "== tiled volume vs flat: %s, %s ==@.  %s@." ename vname
             (if ok then "bit-identical" else "MISMATCH");
           if not ok then incr tiled_failures)
         [ ("raw", false); ("optimized", true) ])
     [ ("interp", `Interp); ("jit", `Jit); ("jit-parallel", `Jit_parallel 3);
       ("native", `Native) ]);
  (* host-plan lint: the paper's Listing 5 pipeline and the two-device
     sharded step, plus two sharded time steps as a Multi plan *)
  let lint_errors = ref 0 in
  let lint label issues =
    Fmt.pr "== lint: %s ==@." label;
    if issues = [] then Fmt.pr "  clean@."
    else List.iter (fun i -> Fmt.pr "  %a@." Lift.Lint.pp_issue i) issues;
    lint_errors := !lint_errors + List.length (Lift.Lint.errors issues)
  in
  lint "paper Listing 5 host program"
    (Lift.Lint.check_host (fst (listing5_program ())));
  lint "Z-sharded two-device FI step"
    (Lift.Lint.check_host (fst (sharded_host_program ())));
  lint "Z-sharded two-device FI step, event-annotated (overlap)"
    (Lift.Lint.check_host (fst (sharded_host_program ~overlap:true ())));
  (* sequential and overlapped multi-device plans for all three schemes *)
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  let scheme_kernels = function
    | `Fi -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
    | `Fi_mm ->
        [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]
    | `Fd_mm ->
        [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
  in
  let splan = Shard.plan ~shards:2 room in
  List.iter
    (fun (label, scheme) ->
      let kernels = scheme_kernels scheme in
      let step : Vgpu.Multi.plan =
        List.concat_map
          (fun d ->
            List.map
              (fun k ->
                Vgpu.Multi.Dev
                  (d, Vgpu.Runtime.Launch { kernel = k; args = []; global = [ 1 ] }))
              kernels)
          [ 0; 1 ]
        @ Shard.exchange_ops splan ~buffer:"next"
        @ List.map (fun d -> Vgpu.Multi.Dev (d, Vgpu.Runtime.Swap ("curr", "next"))) [ 0; 1 ]
      in
      lint
        (Printf.sprintf "sharded Multi plan, two %s steps with halo exchange" label)
        (Lift.Lint.check_sharded (step @ step));
      let ssim =
        Gpu_sim.create ~engine:`Jit ~shards:3 ~schedule:`Seq ~fi_beta:0.1 ~n_branches:3
          ~precision Params.default room
      in
      lint
        (Printf.sprintf "overlapped async plan, two %s steps" label)
        (Lift.Lint.check_async (Gpu_sim.overlap_plan ssim kernels ~steps:2)))
    [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ];
  Fmt.pr
    "@.%d kernel report(s) unsafe, %d unproven (sanitizer-covered), %d lint error(s), %d \
     tiled conformance failure(s)%s@."
    !unsafe !unproven !lint_errors !tiled_failures
    (if engine = `Native then Printf.sprintf ", %d native compile failure(s)" !native_failures
     else "");
  if !unsafe > 0 || !lint_errors > 0 || !native_failures > 0 || !tiled_failures > 0 then
    exit 1

(* ------------------------------------------------------------------ *)
(* racs tune: the paper's §VI protocol on any kernel/room/device *)

let cmd_tune shape scheme =
  let precision = Kernel_ast.Cast.Double in
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  let kernel, kind =
    match scheme with
    | "fi" -> (Hand_kernels.fused_fi ~precision, Harness.Workloads.Fused)
    | "fi-mm" -> (Hand_kernels.boundary_fi_mm ~precision ~betas, Harness.Workloads.Boundary 0)
    | "fd-mm" -> (Hand_kernels.boundary_fd_mm ~precision ~mb:3, Harness.Workloads.Boundary 3)
    | "volume" -> (Hand_kernels.volume ~precision, Harness.Workloads.Volume)
    | s -> failwith (Printf.sprintf "unknown scheme %s (fi | volume | fi-mm | fd-mm)" s)
  in
  Printf.printf "work-group tuning, %s kernel, %s rooms (model)

" scheme
    (Geometry.shape_label shape);
  Printf.printf "%-12s %-6s" "device" "size";
  List.iter (fun ls -> Printf.printf " %9s" (Printf.sprintf "ws=%d" ls)) Harness.Tuner.candidate_sizes;
  Printf.printf " %6s
" "best";
  List.iter
    (fun device ->
      List.iter
        (fun dims ->
          let w = Harness.Workloads.workload kind shape dims in
          let r = Harness.Tuner.tune ~device kernel w in
          Printf.printf "%-12s %-6s" device.Vgpu.Device.name (Geometry.size_label dims);
          List.iter (fun (_, t) -> Printf.printf " %8.3fms" (t *. 1e3)) r.Harness.Tuner.sweep;
          Printf.printf " %6d
" r.Harness.Tuner.best_size)
        Geometry.paper_sizes)
    Vgpu.Device.all

(* ------------------------------------------------------------------ *)

let precision_arg =
  Arg.(value & opt precision_conv Kernel_ast.Cast.Double & info [ "precision" ] ~doc:"single or double")

let no_opt_arg =
  Arg.(
    value & flag
    & info [ "no-opt" ] ~doc:"disable the kernel-AST optimizer pipeline (CSE, LICM, unrolling)")

let kernels_cmd =
  Cmd.v (Cmd.info "kernels" ~doc:"Dump generated and hand-written OpenCL kernels")
    Term.(const cmd_kernels $ precision_arg $ no_opt_arg)

let simulate_cmd =
  let shape = Arg.(value & opt shape_conv Geometry.Box & info [ "shape" ] ~doc:"box, dome or l-shape") in
  let nx = Arg.(value & opt int 40 & info [ "nx" ]) in
  let ny = Arg.(value & opt int 32 & info [ "ny" ]) in
  let nz = Arg.(value & opt int 24 & info [ "nz" ]) in
  let scheme = Arg.(value & opt string "fd-mm" & info [ "scheme" ] ~doc:"fi | fi-mm | fd-mm") in
  let steps = Arg.(value & opt int 200 & info [ "steps" ]) in
  let backend_conv =
    Arg.conv
      ( (function
        | "hand" -> Ok `Hand
        | "lift" -> Ok `Lift
        | s -> Error (`Msg (Printf.sprintf "unknown backend %s" s))),
        fun ppf b -> Fmt.string ppf (match b with `Hand -> "hand" | `Lift -> "lift") )
  in
  let backend =
    Arg.(value & opt backend_conv `Lift & info [ "backend" ] ~doc:"hand or lift")
  in
  let engine_conv =
    Arg.conv
      ( (function
        | "interp" -> Ok `Interp
        | "jit" -> Ok `Jit
        | "jit-parallel" -> Ok `Jit_parallel
        | "native" -> Ok `Native
        | s -> Error (`Msg (Printf.sprintf "unknown engine %s" s))),
        fun ppf e ->
          Fmt.string ppf
            (match e with
            | `Interp -> "interp"
            | `Jit -> "jit"
            | `Jit_parallel -> "jit-parallel"
            | `Native -> "native") )
  in
  let engine =
    Arg.(
      value & opt engine_conv `Jit
      & info [ "engine" ] ~doc:"virtual-GPU engine: interp, jit, jit-parallel or native")
  in
  let domains =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "domains" ] ~doc:"domains for --engine jit-parallel")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:"Z-shard the grid over this many virtual devices (0 = single device)")
  in
  let overlap =
    Arg.(
      value & flag
      & info [ "overlap" ]
          ~doc:
            "sharded runs: per-device async command queues with interior/frontier split \
             — halo exchanges overlap interior compute and steps pipeline (bit-identical \
             results; falls back to the sequential schedule under --sanitize)")
  in
  let no_overlap =
    Arg.(
      value & flag
      & info [ "no-overlap" ]
          ~doc:"sharded runs: force the strictly sequential per-device schedule")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"print per-kernel launch statistics")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "run on the shadow-memory checked interpreter (races, OOB, uninitialised \
             reads); nonzero exit on any violation")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"statically verify every launched kernel first (fail fast on Unsafe)")
  in
  let tile =
    Arg.(
      value
      & opt (some string) None
      & info [ "tile" ] ~docv:"WxH"
          ~doc:
            "run the volume kernel through the work-group execution tier: a 2.5D-tiled \
             stencil staging WxH tiles of curr in local memory (bit-identical results)")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run an impulse-response simulation")
    Term.(
      const cmd_simulate $ shape $ nx $ ny $ nz $ scheme $ steps $ backend $ engine
      $ domains $ shards $ overlap $ no_overlap $ no_opt_arg $ stats $ sanitize $ verify
      $ tile)

let experiments_cmd =
  let which = Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT") in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate paper tables/figures (table2 table3 fig2 fig4 fig5 fig6 all)")
    Term.(const cmd_experiments $ which)

let host_demo_cmd =
  let sharded =
    Arg.(
      value & flag
      & info [ "sharded" ] ~doc:"show the Z-sharded two-device step instead")
  in
  Cmd.v (Cmd.info "host-demo" ~doc:"Show the compiled host program of paper Listing 5")
    Term.(const cmd_host_demo $ sharded)

let check_cmd =
  let shape = Arg.(value & opt shape_conv Geometry.Box & info [ "shape" ] ~doc:"box, dome or l-shape") in
  let nx = Arg.(value & opt int 40 & info [ "nx" ]) in
  let ny = Arg.(value & opt int 32 & info [ "ny" ]) in
  let nz = Arg.(value & opt int 24 & info [ "nz" ]) in
  let engine_conv =
    Arg.conv
      ( (function
        | "interp" -> Ok `Interp
        | "native" -> Ok `Native
        | s -> Error (`Msg (Printf.sprintf "unknown check engine %s (interp | native)" s))),
        fun ppf e -> Fmt.string ppf (match e with `Interp -> "interp" | `Native -> "native") )
  in
  let engine =
    Arg.(
      value & opt engine_conv `Interp
      & info [ "engine" ]
          ~doc:"with native, also compile every kernel through the C backend (cc + dlopen)")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static race/bounds verdicts for every kernel (raw + optimized) and host-plan \
          lint; nonzero exit on Unsafe or lint errors")
    Term.(const cmd_check $ shape $ nx $ ny $ nz $ precision_arg $ engine)

let tune_cmd =
  let shape = Arg.(value & opt shape_conv Geometry.Box & info [ "shape" ] ~doc:"box, dome or l-shape") in
  let scheme = Arg.(value & opt string "fd-mm" & info [ "scheme" ] ~doc:"fi | volume | fi-mm | fd-mm") in
  Cmd.v
    (Cmd.info "tune" ~doc:"Sweep work-group sizes per device and room (paper §VI protocol)")
    Term.(const cmd_tune $ shape $ scheme)

let emit_c_cmd =
  Cmd.v
    (Cmd.info "emit-c"
       ~doc:"Emit a complete OpenCL .c program for the Listing 5 pipeline")
    Term.(const cmd_emit_c $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "racs" ~version:"1.0.0"
             ~doc:"Room acoustics simulations with complex boundary conditions via Lift-style code generation")
          [ kernels_cmd; simulate_cmd; check_cmd; experiments_cmd; host_demo_cmd;
            emit_c_cmd; tune_cmd ]))
