(* Benchmark harness.

   Two layers, matching the paper's evaluation:

   1. The *model* reproduction: every table and figure of the paper
      (Table II/III, Figures 2/4/5/6 with appendix Tables IV/V/VI),
      regenerated through the analytic GPU performance model from the
      actual kernel ASTs, printed next to the paper's reported numbers
      with a shape-agreement summary.

   2. *Measured* micro-benchmarks (Bechamel): wall-clock execution of the
      same kernels — Lift-generated vs hand-written — on the virtual
      GPU's JIT, one group per paper table/figure, on a small room.
      These verify that the Lift-generated kernels are on par with the
      hand-written ones when both run on identical hardware, which is
      the paper's headline claim. *)

open Bechamel
open Acoustics

let params = Params.default
let bench_dims = Geometry.dims ~nx:48 ~ny:40 ~nz:32
let precision = Kernel_ast.Cast.Double

let lift_kernel name prog =
  (Lift_acoustics.Programs.compile ~name ~precision prog).Lift.Codegen.kernel

let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

type bench_sim = {
  sim : Gpu_sim.t;
  kernels : Kernel_ast.Cast.kernel list;
}

let make_sim shape kernels =
  let room = Geometry.build ~n_materials:4 shape bench_dims in
  let sim = Gpu_sim.create ~engine:`Jit ~fi_beta:0.1 ~n_branches:3 params room in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  (* warm the JIT cache *)
  List.iter (Gpu_sim.launch sim) kernels;
  { sim; kernels }

let step_test ~name bs =
  Test.make ~name (Staged.stage (fun () -> Gpu_sim.step bs.sim bs.kernels))

let launch_test ~name bs kernel =
  Test.make ~name (Staged.stage (fun () -> Gpu_sim.launch bs.sim kernel))

(* Reference (pure OCaml) implementations for context. *)
let ref_step_test ~name room f =
  let st = State.create ~n_branches:3 room in
  let cx, cy, cz = State.centre st in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  Test.make ~name (Staged.stage (fun () -> f st))

let build_tests () =
  let hand_fused = Hand_kernels.fused_fi ~precision in
  let lift_fused = lift_kernel "lift_fused_fi" (Lift_acoustics.Programs.fused_fi ()) in
  let hand_volume = Hand_kernels.volume ~precision in
  let lift_volume = lift_kernel "lift_volume" (Lift_acoustics.Programs.volume ()) in
  let hand_fi_mm = Hand_kernels.boundary_fi_mm ~precision ~betas in
  let lift_fi_mm = lift_kernel "lift_boundary_fi_mm" (Lift_acoustics.Programs.boundary_fi_mm ()) in
  let hand_fd_mm = Hand_kernels.boundary_fd_mm ~precision ~mb:3 in
  let lift_fd_mm =
    lift_kernel "lift_boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ())
  in
  let room = Geometry.build ~n_materials:4 Geometry.Box bench_dims in
  let tables = Material.tables ~n_branches:3 Material.defaults in
  let fig4 =
    Test.make_grouped ~name:"table4_fi_fused"
      [
        step_test ~name:"hand" (make_sim Geometry.Box [ hand_fused ]);
        step_test ~name:"lift" (make_sim Geometry.Box [ lift_fused ]);
        ref_step_test ~name:"ocaml_ref" room (fun st ->
            Ref_kernels.fused_fi_box params ~dims:bench_dims ~beta:0.1 ~prev:st.State.prev
              ~curr:st.State.curr ~next:st.State.next;
            State.rotate st);
      ]
  in
  let fi_mm_sim_h = make_sim Geometry.Box [ hand_volume; hand_fi_mm ] in
  let fi_mm_sim_l = make_sim Geometry.Box [ lift_volume; lift_fi_mm ] in
  let fig5 =
    Test.make_grouped ~name:"table5_fi_mm_boundary"
      [
        launch_test ~name:"hand" fi_mm_sim_h hand_fi_mm;
        launch_test ~name:"lift" fi_mm_sim_l lift_fi_mm;
        ref_step_test ~name:"ocaml_ref" room (fun st ->
            Ref_kernels.boundary_fi_mm params
              ~boundary_indices:room.Geometry.boundary_indices ~nbrs:room.Geometry.nbrs
              ~material:room.Geometry.material ~beta:tables.Material.t_beta
              ~prev:st.State.prev ~next:st.State.next);
      ]
  in
  let fd_mm_sim_h = make_sim Geometry.Box [ hand_volume; hand_fd_mm ] in
  let fd_mm_sim_l = make_sim Geometry.Box [ lift_volume; lift_fd_mm ] in
  let fig6 =
    Test.make_grouped ~name:"table6_fd_mm_boundary"
      [
        launch_test ~name:"hand" fd_mm_sim_h hand_fd_mm;
        launch_test ~name:"lift" fd_mm_sim_l lift_fd_mm;
        ref_step_test ~name:"ocaml_ref" room (fun st ->
            Ref_kernels.boundary_fd_mm params ~mb:3
              ~boundary_indices:room.Geometry.boundary_indices ~nbrs:room.Geometry.nbrs
              ~material:room.Geometry.material ~beta:tables.Material.t_beta_fd
              ~bi:tables.Material.t_bi ~d:tables.Material.t_d ~f:tables.Material.t_f
              ~di:tables.Material.t_di ~prev:st.State.prev ~next:st.State.next
              ~g1:st.State.g1 ~vel_prev:st.State.vel_prev ~vel_next:st.State.vel_next);
      ]
  in
  let fig2 =
    Test.make_grouped ~name:"fig2_step_shares"
      [
        launch_test ~name:"volume_kernel" fd_mm_sim_h hand_volume;
        step_test ~name:"full_step_fi_mm" fi_mm_sim_h;
        step_test ~name:"full_step_fd_mm" fd_mm_sim_h;
      ]
  in
  Test.make_grouped ~name:"bench" [ fig4; fig5; fig6; fig2 ]

let run_benchmarks () =
  let tests = build_tests () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:60 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  Printf.printf "\n== Measured wall-clock on the virtual GPU (this machine) ==\n";
  Printf.printf "%-44s %14s\n" "benchmark" "time/run (ms)";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter (fun (name, ns) -> Printf.printf "%-44s %14.3f\n" name (ns /. 1e6)) rows;
  (* headline ratios *)
  let find key = List.assoc_opt key rows in
  let ratio label a b =
    match (find a, find b) with
    | Some x, Some y -> Printf.printf "%-44s %14.2f\n" label (x /. y)
    | _ -> ()
  in
  Printf.printf "\n== Lift-generated vs hand-written (same virtual GPU) ==\n";
  ratio "FI fused: lift / hand" "bench/table4_fi_fused/lift" "bench/table4_fi_fused/hand";
  ratio "FI-MM boundary: lift / hand" "bench/table5_fi_mm_boundary/lift"
    "bench/table5_fi_mm_boundary/hand";
  ratio "FD-MM boundary: lift / hand" "bench/table6_fd_mm_boundary/lift"
    "bench/table6_fd_mm_boundary/hand";
  match
    ( find "bench/fig2_step_shares/volume_kernel",
      find "bench/fig2_step_shares/full_step_fi_mm",
      find "bench/fig2_step_shares/full_step_fd_mm" )
  with
  | Some v, Some fi, Some fd ->
      Printf.printf "\n== Figure 2 (measured): boundary share of a full step ==\n";
      Printf.printf "FI-MM boundary share: %5.1f%%\n" ((fi -. v) /. fi *. 100.);
      Printf.printf "FD-MM boundary share: %5.1f%%\n" ((fd -. v) /. fd *. 100.)
  | _ -> ()

(* Ablations of the design choices DESIGN.md calls out:
   - private-memory staging of FD branch state vs re-reading global memory;
   - branch-major vs point-major state layout;
   - boundary-index contiguity (sorted vs shuffled indices, model-side via
     the coalescing factor). *)
let run_ablations () =
  Printf.printf "\n== Ablations (FD-MM boundary kernel) ==\n";
  let device = Vgpu.Device.gtx780 in
  let dims = List.hd Geometry.paper_sizes in
  let w = Harness.Workloads.workload (Harness.Workloads.Boundary 3) Geometry.Box dims in
  let variant label ?(staging = `Private) ?(layout = `Branch_major) () =
    let k =
      lift_kernel "fd_variant"
        (Lift_acoustics.Programs.boundary_fd_mm ~staging ~layout ~mb:3 ())
    in
    let t = Vgpu.Perf_model.predict device k w in
    let c = Kernel_ast.Analysis.kernel_counts k in
    Printf.printf "%-38s model %7.3f ms   (%2.0f loads, %2.0f stores / update)\n" label
      (t *. 1e3)
      (Kernel_ast.Analysis.total_loads c)
      (Kernel_ast.Analysis.total_stores c)
  in
  variant "private staging, branch-major (paper)" ();
  variant "global re-reads, branch-major" ~staging:`Global ();
  variant "private staging, point-major" ~layout:`Point_major ();
  (* contiguity: the same kernel on sorted vs fully scattered boundaries *)
  let k = lift_kernel "fd" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ()) in
  List.iter
    (fun (label, contiguity) ->
      let w = { w with Vgpu.Perf_model.contiguity } in
      Printf.printf "%-38s model %7.3f ms\n" label (Vgpu.Perf_model.predict device k w *. 1e3))
    [
      ("boundary indices sorted (box: 0.78)", 0.78);
      ("boundary indices shuffled (0.0)", 0.0);
      ("perfectly contiguous (1.0)", 1.0);
    ];
  (* measured: staging ablation on the virtual GPU JIT *)
  let measure staging =
    let bs =
      make_sim Geometry.Box
        [ lift_kernel "fd_m" (Lift_acoustics.Programs.boundary_fd_mm ~staging ~mb:3 ()) ]
    in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 40 do
      List.iter (Gpu_sim.launch bs.sim) bs.kernels
    done;
    (Unix.gettimeofday () -. t0) /. 40.
  in
  let tp = measure `Private and tg = measure `Global in
  Printf.printf "measured JIT: private %.3f ms, global re-reads %.3f ms (x%.2f)\n" (tp *. 1e3)
    (tg *. 1e3) (tg /. tp)

(* The parallel virtual GPU: sequential JIT vs the domain-pool backend
   on an FD-MM-sized NDRange (full step: volume + FD-MM boundary).
   Verifies bit-identical grids, then reports wall-clock speedup and the
   runtime's per-kernel launch statistics. *)
let run_parallel_speedup () =
  Printf.printf "\n== Parallel virtual GPU: sequential JIT vs domain pool ==\n";
  let dims = Geometry.dims ~nx:96 ~ny:80 ~nz:64 in
  let kernels = [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ] in
  let make engine =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let sim = Gpu_sim.create ~engine ~fi_beta:0.1 ~n_branches:3 params room in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    Gpu_sim.step sim kernels;
    (* warm-up: JIT compile + pool spawn *)
    sim
  in
  let reps = 5 in
  let measure sim =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      Gpu_sim.step sim kernels
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let seq_sim = make `Jit in
  let t_seq = measure seq_sim in
  Printf.printf "room %dx%dx%d, %d reps; host has %d core(s)\n" dims.Geometry.nx
    dims.Geometry.ny dims.Geometry.nz reps
    (Domain.recommended_domain_count ());
  Printf.printf "%-24s %10.3f ms/step\n" "jit (sequential)" (t_seq *. 1e3);
  let last_par = ref None in
  List.iter
    (fun d ->
      let sim = make (`Jit_parallel d) in
      let t = measure sim in
      last_par := Some sim;
      Printf.printf "%-24s %10.3f ms/step   speedup x%.2f\n"
        (Printf.sprintf "jit-parallel, %d domains" d)
        (t *. 1e3) (t_seq /. t))
    [ 1; 2; 4 ];
  (match !last_par with
  | Some par_sim ->
      let same =
        Array.for_all2
          (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
          seq_sim.Gpu_sim.state.State.curr par_sim.Gpu_sim.state.State.curr
      in
      Printf.printf "parallel grid bit-identical to sequential: %b\n" same;
      Fmt.pr "@.%a" Vgpu.Runtime.pp_stats (Gpu_sim.stats par_sim)
  | None -> ())

(* Z-sharded multi-device execution: the grid cut into slabs along Z,
   one virtual device per slab, ghost planes exchanged every step.
   Verifies the sharded grid is bit-identical to the single-device JIT
   after the same number of steps, then reports wall-clock per step,
   total halo traffic, and the analytic model's view of the split. *)
let run_shard_scaling () =
  Printf.printf "\n== Z-sharded multi-device execution (virtual) ==\n";
  let dims = Geometry.dims ~nx:96 ~ny:80 ~nz:64 in
  let kernels =
    [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
  in
  let steps = 5 in
  let make ?shards () =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let sim = Gpu_sim.create ~engine:`Jit ?shards ~fi_beta:0.1 ~n_branches:3 params room in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    Gpu_sim.step sim kernels;
    (* warm-up: JIT compile + scatter *)
    sim
  in
  let measure sim =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to steps do
      Gpu_sim.step sim kernels
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int steps
  in
  let base = make () in
  let t_base = measure base in
  Printf.printf "room %dx%dx%d, fd-mm step, %d reps\n" dims.Geometry.nx dims.Geometry.ny
    dims.Geometry.nz steps;
  Printf.printf "%-24s %10.3f ms/step\n" "jit, single device" (t_base *. 1e3);
  List.iter
    (fun shards ->
      let sim = make ~shards () in
      let t = measure sim in
      Gpu_sim.sync sim;
      let same =
        Array.for_all2
          (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
          base.Gpu_sim.state.State.curr sim.Gpu_sim.state.State.curr
      in
      let s = Gpu_sim.stats sim in
      Printf.printf
        "%-24s %10.3f ms/step   speedup x%.2f   halo %6.2f MB   bit-identical %b\n"
        (Printf.sprintf "jit, %d shards" shards)
        (t *. 1e3) (t_base /. t)
        (float_of_int s.Vgpu.Runtime.s_d2d_bytes /. 1e6)
        same)
    [ 1; 2; 4 ];
  (* the analytic model's view of the same split (volume kernel) *)
  let w = Harness.Workloads.workload Harness.Workloads.Volume Geometry.Box dims in
  let k = Hand_kernels.volume ~precision in
  List.iter
    (fun shards ->
      Printf.printf "model (volume, gtx780): %d shard(s) %8.3f ms/step\n" shards
        (Vgpu.Perf_model.predict_sharded Vgpu.Device.gtx780 k w
           ~plane_elems:(dims.Geometry.nx * dims.Geometry.ny)
           ~shards
        *. 1e3))
    [ 1; 2; 4 ]

(* Optimizer trajectory: the same two-kernel time step measured with the
   runtime's kernel-AST optimizer pipeline (Kernel_ast.Opt) off and on,
   for every scheme and for single-device and 2-shard execution.  The
   kernels are compiled with [~optimize:false] so the runtime performs
   (and reports) the optimization itself, exactly as `racs simulate`
   does.  With --json FILE the rows are written as JSON (schema in
   EXPERIMENTS.md) so successive PRs can track the trajectory. *)
let run_opt_trajectory ~json_file ~smoke () =
  (* A boundary-heavy room: the optimizer's headline wins are in the
     boundary kernels (unrolled FD branch loops, CSE'd index arithmetic),
     which a large volume-dominated room would average away. *)
  let dims = if smoke then Geometry.dims ~nx:12 ~ny:10 ~nz:8 else Geometry.dims ~nx:24 ~ny:24 ~nz:24 in
  let reps = if smoke then 1 else 20 in
  let rounds = if smoke then 1 else 5 in
  let lift_raw name prog =
    (Lift_acoustics.Programs.compile ~name ~optimize:false ~precision prog).Lift.Codegen.kernel
  in
  let volume = lift_raw "lift_volume" (Lift_acoustics.Programs.volume ()) in
  let schemes =
    [
      ("fi", [ volume; lift_raw "lift_boundary_fi" (Lift_acoustics.Programs.boundary_fi ()) ]);
      ( "fi-mm",
        [ volume; lift_raw "lift_boundary_fi_mm" (Lift_acoustics.Programs.boundary_fi_mm ()) ] );
      ( "fd-mm",
        [
          volume;
          lift_raw "lift_boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ());
        ] );
    ]
  in
  let make ~optimize ~shards kernels =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let shards = if shards > 0 then Some shards else None in
    let sim =
      Gpu_sim.create ~engine:`Jit ~optimize ?shards ~fi_beta:0.1 ~n_branches:3 params room
    in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    Gpu_sim.step sim kernels;
    (* warm-up: optimize + JIT compile *)
    sim
  in
  let time sim kernels =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      Gpu_sim.step sim kernels
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  Printf.printf "\n== Optimizer pipeline: ns/step with Kernel_ast.Opt off vs on ==\n";
  Printf.printf "room %dx%dx%d box, jit engine, %d rep(s)\n" dims.Geometry.nx dims.Geometry.ny
    dims.Geometry.nz reps;
  Printf.printf "%-10s %7s %15s %15s %8s\n" "workload" "shards" "raw ns/step" "opt ns/step" "gain";
  let rows =
    List.concat_map
      (fun (name, kernels) ->
        List.map
          (fun shards ->
            (* raw and opt rounds interleave, each round gets freshly
               allocated simulations, and each side keeps its minimum:
               neither slow drift (GC, thermal) nor the heap placement
               of any one allocation can masquerade as an optimizer
               gain or regression *)
            let t_raw = ref infinity and t_opt = ref infinity in
            for _ = 1 to rounds do
              let sim_raw = make ~optimize:false ~shards kernels in
              let sim_opt = make ~optimize:true ~shards kernels in
              t_raw := Float.min !t_raw (time sim_raw kernels);
              t_opt := Float.min !t_opt (time sim_opt kernels)
            done;
            let t_raw = !t_raw and t_opt = !t_opt in
            let gain = (t_raw -. t_opt) /. t_raw *. 100. in
            Printf.printf "%-10s %7d %15.0f %15.0f %+7.1f%%\n" name shards (t_raw *. 1e9)
              (t_opt *. 1e9) gain;
            (name, shards, t_raw *. 1e9, t_opt *. 1e9, gain))
          [ 0; 2 ])
      schemes
  in
  (match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc "{\n  \"bench\": \"opt_trajectory\",\n";
      Printf.fprintf oc "  \"room\": { \"nx\": %d, \"ny\": %d, \"nz\": %d },\n" dims.Geometry.nx
        dims.Geometry.ny dims.Geometry.nz;
      Printf.fprintf oc "  \"precision\": \"double\",\n  \"reps\": %d,\n  \"results\": [\n" reps;
      List.iteri
        (fun i (name, shards, raw_ns, opt_ns, gain) ->
          Printf.fprintf oc
            "    { \"workload\": %S, \"engine\": \"jit\", \"shards\": %d, \
             \"ns_per_step_raw\": %.0f, \"ns_per_step_opt\": %.0f, \"gain_pct\": %.2f }%s\n"
            name shards raw_ns opt_ns gain
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file);
  rows

(* Asynchronous per-device command queues: the sequential schedule vs
   the overlapped one, compared in *virtual device time*.  On this
   single-host simulator the queues advance per-device virtual clocks —
   a launch costs its measured wall duration, a halo exchange costs
   bytes / 12 GB/s of link time — so the sequential cost of a step
   interval is the sum of every device's kernel time plus the modelled
   halo transfer (nothing hidden), while the overlapped cost is the
   critical path across the queues ({!Vgpu.Queue} vclocks): frontier
   waits on last step's halo, interior compute hides the transfer, and
   steps pipeline.  Both schedules are bit-for-bit identical; identity
   is re-checked here against a single-device reference, in double for
   every row and in single precision at 2 shards. *)
let run_overlap_bench ~json_file ~opt_rows ~smoke () =
  Printf.printf "\n== Overlapped async queues: virtual ns/step, sequential vs overlapped ==\n";
  let dims =
    if smoke then Geometry.dims ~nx:24 ~ny:20 ~nz:16 else Geometry.dims ~nx:48 ~ny:40 ~nz:32
  in
  let steps = if smoke then 4 else 10 in
  let kernels_of scheme precision =
    match scheme with
    | `Fi -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
    | `Fi_mm -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]
    | `Fd_mm -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
  in
  let make ?shards ?schedule precision =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let sim =
      Gpu_sim.create ~engine:`Jit ?shards ?schedule ~precision ~fi_beta:0.1 ~n_branches:3
        params room
    in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    sim
  in
  let advance sim kernels n =
    for _ = 1 to n do
      Gpu_sim.step sim kernels
    done
  in
  let bits_equal a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  let plane = dims.Geometry.nx * dims.Geometry.ny in
  Printf.printf "room %dx%dx%d box, jit engine, %d-step interval, virtual device time\n"
    dims.Geometry.nx dims.Geometry.ny dims.Geometry.nz steps;
  Printf.printf "%-10s %7s %15s %15s %9s %6s\n" "workload" "shards" "seq ns/step"
    "ovlp ns/step" "speedup" "ident";
  let rows =
    List.concat_map
      (fun (name, scheme) ->
        let kernels = kernels_of scheme precision in
        (* single-device reference grid after the same number of steps *)
        let ref_sim = make precision in
        advance ref_sim kernels (1 + steps);
        let ref_grid = Array.copy ref_sim.Gpu_sim.state.State.curr in
        List.map
          (fun shards ->
            (* sequential schedule: every device's kernel time plus the
               modelled halo transfer *)
            let seq_sim = make ~shards ~schedule:`Seq precision in
            advance seq_sim kernels 1;
            Gpu_sim.reset_stats seq_sim;
            advance seq_sim kernels steps;
            let s = Gpu_sim.stats seq_sim in
            let kernel_s =
              List.fold_left
                (fun acc (_, (k : Vgpu.Runtime.kernel_stats)) -> acc +. k.Vgpu.Runtime.total_s)
                0. s.Vgpu.Runtime.per_kernel
            in
            let halo_s =
              float_of_int
                (steps
                * Vgpu.Perf_model.halo_bytes_per_step ~radius:1 ~precision ~plane_elems:plane ~shards)
              /. 12e9
            in
            let seq_ns = (kernel_s +. halo_s) /. float_of_int steps *. 1e9 in
            (* overlapped: critical path of the per-device command queues *)
            let ov_sim = make ~shards ~schedule:`Overlap precision in
            advance ov_sim kernels 1;
            Gpu_sim.reset_stats ov_sim;
            let v0 = Gpu_sim.overlap_vclock_ns ov_sim in
            advance ov_sim kernels steps;
            let v1 = Gpu_sim.overlap_vclock_ns ov_sim in
            let ov_ns = (v1 -. v0) /. float_of_int steps in
            Gpu_sim.sync ov_sim;
            let ident = bits_equal ref_grid ov_sim.Gpu_sim.state.State.curr in
            let speedup = seq_ns /. ov_ns in
            Printf.printf "%-10s %7d %15.0f %15.0f %8.2fx %6b\n" name shards seq_ns ov_ns
              speedup ident;
            (name, shards, seq_ns, ov_ns, speedup, ident))
          [ 1; 2; 4 ])
      [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]
  in
  (* single-precision identity spot check at 2 shards *)
  let id32 =
    List.map
      (fun (name, scheme) ->
        let kernels = kernels_of scheme Kernel_ast.Cast.Single in
        let ref_sim = make Kernel_ast.Cast.Single in
        advance ref_sim kernels (1 + steps);
        let ov_sim = make ~shards:2 ~schedule:`Overlap Kernel_ast.Cast.Single in
        advance ov_sim kernels (1 + steps);
        Gpu_sim.sync ov_sim;
        let ident =
          bits_equal ref_sim.Gpu_sim.state.State.curr ov_sim.Gpu_sim.state.State.curr
        in
        Printf.printf "f32 identity, %-7s 2 shards overlapped vs single device: %b\n" name
          ident;
        (name, ident))
      [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]
  in
  match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc "{\n  \"bench\": \"overlap_queues\",\n";
      Printf.fprintf oc
        "  \"metric\": \"virtual device time: launches cost their measured wall duration \
         on the owning device's queue clock, halo exchanges cost bytes/12GB/s of link \
         time; sequential = sum of all per-device kernel time + halo transfer, \
         overlapped = critical path across the per-device command queues\",\n";
      Printf.fprintf oc "  \"room\": { \"nx\": %d, \"ny\": %d, \"nz\": %d },\n" dims.Geometry.nx
        dims.Geometry.ny dims.Geometry.nz;
      Printf.fprintf oc "  \"precision\": \"double\",\n  \"steps\": %d,\n" steps;
      (match
         List.find_opt (fun (n, sh, _, _, _) -> n = "fi" && sh = 0) opt_rows
       with
      | Some (_, _, raw_ns, opt_ns, gain) ->
          Printf.fprintf oc
            "  \"fi_single_device_opt\": { \"ns_per_step_raw\": %.0f, \"ns_per_step_opt\": \
             %.0f, \"gain_pct\": %.2f },\n"
            raw_ns opt_ns gain
      | None -> Printf.fprintf oc "  \"fi_single_device_opt\": null,\n");
      Printf.fprintf oc "  \"results\": [\n";
      List.iteri
        (fun i (name, shards, seq_ns, ov_ns, speedup, ident) ->
          Printf.fprintf oc
            "    { \"workload\": %S, \"shards\": %d, \"ns_per_step_seq\": %.0f, \
             \"ns_per_step_overlapped\": %.0f, \"speedup\": %.3f, \"bit_identical\": %b }%s\n"
            name shards seq_ns ov_ns speedup ident
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n  \"identity_f32_2shards\": [\n";
      List.iteri
        (fun i (name, ident) ->
          Printf.fprintf oc "    { \"workload\": %S, \"bit_identical\": %b }%s\n" name ident
            (if i = List.length id32 - 1 then "" else ","))
        id32;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file

(* Work-group size tuning, as the paper's protocol requires (§VI). *)
let run_tuning_table () =
  Printf.printf
    "\n== Work-group size tuning (model; the paper reports the best per cell) ==\n";
  let dims = List.hd Geometry.paper_sizes in
  Printf.printf "%-28s %-12s ms at ws=%s (best)\n" "kernel" "device"
    (String.concat "/"
       (List.map string_of_int
          (Harness.Tuner.candidate_sizes
             ~points:(float_of_int (Geometry.n_points dims)))));
  let cells =
    [
      ("volume (grid)", Hand_kernels.volume ~precision,
       Harness.Workloads.workload Harness.Workloads.Volume Geometry.Box dims);
      ("boundary FI-MM", Hand_kernels.boundary_fi_mm ~precision ~betas,
       Harness.Workloads.workload (Harness.Workloads.Boundary 0) Geometry.Box dims);
      ("boundary FD-MM", Hand_kernels.boundary_fd_mm ~precision ~mb:3,
       Harness.Workloads.workload (Harness.Workloads.Boundary 3) Geometry.Box dims);
    ]
  in
  List.iter
    (fun (label, kernel, w) ->
      List.iter
        (fun device ->
          let r = Harness.Tuner.tune ~device kernel w in
          let sweep =
            String.concat "/"
              (List.map (fun (_, t) -> Printf.sprintf "%.3f" (t *. 1e3)) r.Harness.Tuner.sweep)
          in
          Printf.printf "%-28s %-12s %s  (ws=%d)\n" label device.Vgpu.Device.name sweep
            r.Harness.Tuner.best_size)
        [ Vgpu.Device.gtx780; Vgpu.Device.amd7970 ])
    cells

(* Cost of checked execution: the shadow-memory sanitizer forces the
   reference interpreter and hooks every access, so this bounds what a
   `--sanitize` debugging run costs relative to the plain interpreter. *)
let run_sanitizer_overhead () =
  Printf.printf "\n== Sanitizer overhead: interpreter ns/step, plain vs checked ==\n";
  let dims = Geometry.dims ~nx:12 ~ny:10 ~nz:8 in
  let kernels =
    [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
  in
  let measure ~sanitize =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let sim = Gpu_sim.create ~engine:`Interp ~sanitize ~fi_beta:0.1 ~n_branches:3 params room in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    Gpu_sim.step sim kernels;
    let reps = 5 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      Gpu_sim.step sim kernels
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let plain = measure ~sanitize:false and checked = measure ~sanitize:true in
  Printf.printf "room %dx%dx%d box, fd-mm, interp engine\n" dims.Geometry.nx dims.Geometry.ny
    dims.Geometry.nz;
  Printf.printf "%-24s %15.0f\n" "plain interpreter" (plain *. 1e9);
  Printf.printf "%-24s %15.0f  (%.1fx)\n" "sanitized interpreter" (checked *. 1e9)
    (checked /. plain)


(* Native compiled backend vs the closure JIT: the same full time step
   (volume + boundary) rendered to C, compiled with the system compiler
   and dlopened, for every scheme.  Bit-identity against the JIT grid is
   asserted per row, and the content-addressed binary cache is exercised
   cold (fresh cache directory: every kernel compiles) then warm (memo
   dropped: every kernel loads from disk without a cc run). *)
let run_native_bench ~json_file ~smoke () =
  Printf.printf "\n== Native compiled backend: ns/step, jit vs cc+dlopen ==\n";
  let dims =
    if smoke then Geometry.dims ~nx:16 ~ny:12 ~nz:10 else Geometry.dims ~nx:32 ~ny:28 ~nz:24
  in
  let steps = if smoke then 4 else 20 in
  (* a fresh cache directory makes the cold run genuinely cold *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "racs-native-bench-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir cache_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Vgpu.Native.set_cache_dir cache_dir;
  Vgpu.Native.reset_memo ();
  Vgpu.Native.reset_counters ();
  let kernels_of scheme =
    match scheme with
    | `Fi -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
    | `Fi_mm -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]
    | `Fd_mm -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
  in
  let make engine =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let sim = Gpu_sim.create ~engine ~precision ~fi_beta:0.1 ~n_branches:3 params room in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    sim
  in
  let advance sim kernels n =
    for _ = 1 to n do
      Gpu_sim.step sim kernels
    done
  in
  let bits_equal a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  let time engine kernels =
    let sim = make engine in
    advance sim kernels 1;
    (* warm-up: optimize + compile *)
    let t0 = Unix.gettimeofday () in
    advance sim kernels steps;
    ((Unix.gettimeofday () -. t0) /. float_of_int steps, sim)
  in
  Printf.printf "room %dx%dx%d box, double precision, %d steps (cc: %s %s)\n" dims.Geometry.nx
    dims.Geometry.ny dims.Geometry.nz steps (Vgpu.Native.cc ()) (Vgpu.Native.flags ());
  Printf.printf "%-10s %15s %15s %9s %6s\n" "workload" "jit ns/step" "native ns/step"
    "speedup" "ident";
  let rows =
    List.map
      (fun (name, scheme) ->
        let kernels = kernels_of scheme in
        let t_jit, jit_sim = time `Jit kernels in
        let t_nat, nat_sim = time `Native kernels in
        let ident =
          bits_equal jit_sim.Gpu_sim.state.State.curr nat_sim.Gpu_sim.state.State.curr
        in
        let speedup = t_jit /. t_nat in
        Printf.printf "%-10s %15.0f %15.0f %8.2fx %6b\n" name (t_jit *. 1e9) (t_nat *. 1e9)
          speedup ident;
        (name, t_jit *. 1e9, t_nat *. 1e9, speedup, ident))
      [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]
  in
  (* cold-then-warm cache behaviour: the timing runs above compiled each
     distinct kernel exactly once (cold); dropping the in-process memo
     and re-creating the simulations must hit the disk cache with zero
     further cc runs (warm) *)
  let cold = Vgpu.Native.counters () in
  Vgpu.Native.reset_memo ();
  Vgpu.Native.reset_counters ();
  List.iter
    (fun (_, scheme) ->
      let sim = make `Native in
      advance sim (kernels_of scheme) 1)
    [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ];
  let warm = Vgpu.Native.counters () in
  let pp_counters label (c : Vgpu.Native.counters) =
    Printf.printf "%s cache: %d compile(s), %d disk hit(s), %d memo hit(s)\n" label
      c.Vgpu.Native.c_compiles c.Vgpu.Native.c_disk_hits c.Vgpu.Native.c_memo_hits
  in
  pp_counters "cold" cold;
  pp_counters "warm" warm;
  if warm.Vgpu.Native.c_compiles > 0 then
    Printf.printf "WARNING: warm cache run recompiled %d kernel(s)\n"
      warm.Vgpu.Native.c_compiles;
  (match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc "{\n  \"bench\": \"native_vs_jit\",\n";
      Printf.fprintf oc "  \"room\": { \"nx\": %d, \"ny\": %d, \"nz\": %d },\n"
        dims.Geometry.nx dims.Geometry.ny dims.Geometry.nz;
      Printf.fprintf oc "  \"precision\": \"double\",\n  \"steps\": %d,\n" steps;
      Printf.fprintf oc "  \"cc\": %S,\n  \"cflags\": %S,\n" (Vgpu.Native.cc ())
        (Vgpu.Native.flags ());
      Printf.fprintf oc "  \"results\": [\n";
      List.iteri
        (fun i (name, jit_ns, nat_ns, speedup, ident) ->
          Printf.fprintf oc
            "    { \"workload\": %S, \"ns_per_step_jit\": %.0f, \"ns_per_step_native\": \
             %.0f, \"speedup\": %.3f, \"bit_identical\": %b }%s\n"
            name jit_ns nat_ns speedup ident
            (if i = List.length rows - 1 then "" else ","))
        rows;
      let pp_json_counters (c : Vgpu.Native.counters) =
        Printf.sprintf "{ \"compiles\": %d, \"disk_hits\": %d, \"memo_hits\": %d }"
          c.Vgpu.Native.c_compiles c.Vgpu.Native.c_disk_hits c.Vgpu.Native.c_memo_hits
      in
      Printf.fprintf oc "  ],\n  \"cache\": { \"cold\": %s, \"warm\": %s }\n}\n"
        (pp_json_counters cold) (pp_json_counters warm);
      close_out oc;
      Printf.printf "wrote %s\n" file);
  rows

(* -- Work-group tier: the 2.5D-tiled volume kernel vs the flat one --- *)

(* Per scheme (volume + FI / FI-MM / FD-MM boundary), step the same
   simulation with the flat volume kernel and with the tiled one on the
   native engine, check the final fields stay bit-identical, and put the
   measured step-time ratio next to the perf model's prediction for the
   two kernels (the model's third roofline arm prices the __local
   traffic; on a model GPU the tile pays for itself, on the host CPU
   running the fissioned loop nest it usually does not — the ratio of
   ratios is the point of the section). *)
let run_tiled_bench ~json_file ~smoke () =
  Printf.printf "\n== Work-group tier: 2.5D-tiled vs flat volume kernel (native) ==\n";
  let dims =
    if smoke then Geometry.dims ~nx:16 ~ny:12 ~nz:10 else Geometry.dims ~nx:48 ~ny:40 ~nz:32
  in
  let steps = if smoke then 4 else 20 in
  let tw, th = (8, 8) in
  let flat_vol = Hand_kernels.volume ~precision in
  let tiled_vol = Lift_acoustics.Programs.tiled_volume ~precision ~tile:(tw, th) () in
  let kernels_of scheme vol =
    match scheme with
    | `Fi -> [ vol; Hand_kernels.boundary_fi ~precision ]
    | `Fi_mm -> [ vol; Hand_kernels.boundary_fi_mm ~precision ~betas ]
    | `Fd_mm -> [ vol; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
  in
  let time kernels =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let sim = Gpu_sim.create ~engine:`Native ~precision ~fi_beta:0.1 ~n_branches:3 params room in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    Gpu_sim.step sim kernels;
    (* warm-up: optimize + compile *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to steps do
      Gpu_sim.step sim kernels
    done;
    ((Unix.gettimeofday () -. t0) /. float_of_int steps, sim)
  in
  let bits_equal a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  (* what the analytic model expects for the volume kernel alone — on
     the Host profile, whose memory pricing adds the __local staging to
     the stream traffic (a CPU has no separate local tier), giving the
     predicted ratio the same sign as the native measurements below *)
  let device = Vgpu.Device.host in
  let w = Harness.Workloads.workload Harness.Workloads.Volume Geometry.Box dims in
  let pred_flat = Vgpu.Perf_model.predict device flat_vol w in
  let pred_tiled = Vgpu.Perf_model.predict device tiled_vol w in
  let predicted_ratio = pred_tiled /. pred_flat in
  Printf.printf "room %dx%dx%d box, double precision, tile %dx%d, %d steps\n" dims.Geometry.nx
    dims.Geometry.ny dims.Geometry.nz tw th steps;
  Printf.printf "model (%s): volume %.3fms, tiled %.3fms, ratio %.2f\n" device.Vgpu.Device.name
    (pred_flat *. 1e3) (pred_tiled *. 1e3) predicted_ratio;
  Printf.printf "%-10s %15s %15s %9s %6s\n" "workload" "flat ns/step" "tiled ns/step" "ratio"
    "ident";
  let rows =
    List.map
      (fun (name, scheme) ->
        let t_flat, flat_sim = time (kernels_of scheme flat_vol) in
        let t_tiled, tiled_sim = time (kernels_of scheme tiled_vol) in
        let ident =
          bits_equal flat_sim.Gpu_sim.state.State.curr tiled_sim.Gpu_sim.state.State.curr
        in
        let ratio = t_tiled /. t_flat in
        Printf.printf "%-10s %15.0f %15.0f %8.2fx %6b\n" name (t_flat *. 1e9) (t_tiled *. 1e9)
          ratio ident;
        (name, t_flat *. 1e9, t_tiled *. 1e9, ratio, ident))
      [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]
  in
  (match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc "{\n  \"bench\": \"tiled_vs_flat\",\n";
      Printf.fprintf oc "  \"room\": { \"nx\": %d, \"ny\": %d, \"nz\": %d },\n" dims.Geometry.nx
        dims.Geometry.ny dims.Geometry.nz;
      Printf.fprintf oc "  \"tile\": { \"w\": %d, \"h\": %d },\n" tw th;
      Printf.fprintf oc "  \"precision\": \"double\",\n  \"steps\": %d,\n  \"engine\": \"native\",\n"
        steps;
      Printf.fprintf oc
        "  \"model\": { \"device\": %S, \"flat_s\": %.9g, \"tiled_s\": %.9g, \
         \"predicted_ratio_tiled_over_flat\": %.4f },\n"
        device.Vgpu.Device.name pred_flat pred_tiled predicted_ratio;
      Printf.fprintf oc "  \"results\": [\n";
      List.iteri
        (fun i (name, flat_ns, tiled_ns, ratio, ident) ->
          Printf.fprintf oc
            "    { \"workload\": %S, \"ns_per_step_flat\": %.0f, \"ns_per_step_tiled\": %.0f, \
             \"measured_ratio_tiled_over_flat\": %.4f, \"bit_identical\": %b }%s\n"
            name flat_ns tiled_ns ratio ident
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file);
  rows

(* -- Temporal blocking: deep halos, one exchange per T steps --------- *)

(* FI scheme on the native engine, 2 Z-shards: sweep the temporal block
   depth T over {1, 2, 4} in both cadences — per-step kernels under the
   depth-T exchange plan, and the fused T-step volume kernel — measure
   ns per physical step, read the static cost profile (exchange rounds,
   deep-halo bytes, redundant frontier points) off the block exchange
   plan, and check every variant lands bit-identical to T=1.  The
   exchange-round count falls as 1/T; the per-step byte count is
   (2T-1)/(2T) of baseline (the once-per-block exchange ships 2T-1
   planes where T per-step rounds ship 2T), so the bandwidth win is
   modest and the latency amortisation is the real prize — the numbers
   below report both honestly.  A cache-bypassed autotune run records
   which T the measured search actually selects. *)
let run_tblock_bench ~json_file ~smoke () =
  Printf.printf "\n== Temporal blocking: exchange amortisation vs redundant frontier (native) ==\n";
  let dims =
    if smoke then Geometry.dims ~nx:16 ~ny:12 ~nz:10 else Geometry.dims ~nx:48 ~ny:40 ~nz:32
  in
  let steps = if smoke then 8 else 24 in
  let shards = 2 in
  Printf.printf "room %dx%dx%d box, fi scheme, double precision, %d shards, %d steps\n"
    dims.Geometry.nx dims.Geometry.ny dims.Geometry.nz shards steps;
  let per_step_kernels = [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ] in
  let bits_equal a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  let mk_sim ~tblock =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let sim =
      Gpu_sim.create ~engine:`Native ~shards ~schedule:`Seq ~tblock ~precision ~fi_beta:0.1
        ~n_branches:3 params room
    in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    sim
  in
  (* one configuration: [launches] calls advance [steps] physical steps *)
  let run ~tblock ~kernels ~phys_per_launch =
    let launches = steps / phys_per_launch in
    (* identity pass: no warm-up launch, exactly [steps] physical steps *)
    let sim = mk_sim ~tblock in
    for _ = 1 to launches do
      Gpu_sim.step sim kernels
    done;
    Gpu_sim.sync sim;
    let final = Array.copy sim.Gpu_sim.state.State.curr in
    let bs = Gpu_sim.blocked_stats sim kernels in
    (* timing pass: first launch warms the optimizer and binary cache *)
    let sim = mk_sim ~tblock in
    Gpu_sim.step sim kernels;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to launches do
      Gpu_sim.step sim kernels
    done;
    let per_step = (Unix.gettimeofday () -. t0) /. float_of_int steps in
    (per_step, final, bs)
  in
  let tblocks = [ 1; 2; 4 ] in
  let sweep =
    List.map
      (fun t -> (t, run ~tblock:t ~kernels:per_step_kernels ~phys_per_launch:1))
      tblocks
  in
  let _, (_, ref_final, _) = List.hd sweep in
  let fused =
    List.map
      (fun t ->
        ( t,
          run ~tblock:t
            ~kernels:[ Lift_acoustics.Programs.blocked_volume ~precision ~tblock:t () ]
            ~phys_per_launch:t ))
      [ 2; 4 ]
  in
  Printf.printf "%-16s %3s %13s %9s %11s %10s %6s\n" "cadence" "T" "ns/step" "exch/step"
    "bytes/step" "redundant" "ident";
  let row label (t, (per_step, final, bs)) =
    let ident = bits_equal ref_final final in
    let ex, by, rd =
      match bs with
      | Some b ->
          ( b.Gpu_sim.bs_exchanges_per_step,
            b.Gpu_sim.bs_halo_bytes_per_step,
            b.Gpu_sim.bs_redundant_points )
      | None -> (0., 0., 0)
    in
    Printf.printf "%-16s %3d %13.0f %9.2f %11.1f %10d %6b\n" label t (per_step *. 1e9) ex by
      rd ident;
    (label, t, per_step, ex, by, rd, ident)
  in
  let per_step_rows = List.map (row "per-step") sweep in
  let fused_rows = List.map (row "fused") fused in
  let rows = per_step_rows @ fused_rows in
  (* which T does the measured autotuner actually pick for this workload? *)
  let topk, warmup, repeats, tsteps, explore_depth =
    if smoke then (4, 1, 2, 4, 1) else (8, 1, 3, 10, 1)
  in
  let tune =
    Harness.Autotune.tune ~engine:`Native ~topk ~warmup ~repeats ~steps:tsteps
      ~max_shards:2 ~use_cache:false ~explore_depth ~scheme:"fi" ~shape:Geometry.Box ~dims ()
  in
  let e = tune.Harness.Autotune.r_entry in
  let selected = e.Harness.Plan_cache.e_plan.Harness.Plan_cache.pl_tblock in
  let sweep_ns t =
    match List.assoc_opt t sweep with Some (s, _, _) -> s *. 1e9 | None -> nan
  in
  Printf.printf
    "autotuner selection: %s (T=%d); sweep ns/step at selected T %.0f vs T=1 %.0f\n"
    (Harness.Autotune.plan_label e.Harness.Plan_cache.e_plan)
    selected (sweep_ns selected) (sweep_ns 1);
  (match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc "{\n  \"bench\": \"temporal_blocking\",\n";
      Printf.fprintf oc "  \"room\": { \"nx\": %d, \"ny\": %d, \"nz\": %d },\n" dims.Geometry.nx
        dims.Geometry.ny dims.Geometry.nz;
      Printf.fprintf oc
        "  \"scheme\": \"fi\",\n  \"precision\": \"double\",\n  \"engine\": \"native\",\n\
        \  \"shards\": %d,\n  \"schedule\": \"seq\",\n  \"steps\": %d,\n"
        shards steps;
      Printf.fprintf oc "  \"results\": [\n";
      List.iteri
        (fun i (label, t, per_step, ex, by, rd, ident) ->
          Printf.fprintf oc
            "    { \"cadence\": %S, \"tblock\": %d, \"ns_per_step\": %.0f, \
             \"exchange_ops_per_step\": %.2f, \"halo_bytes_per_step\": %.1f, \
             \"redundant_points_per_step\": %d, \"bit_identical_to_t1\": %b }%s\n"
            label t (per_step *. 1e9) ex by rd ident
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc
        "  \"autotune\": { \"selected_tblock\": %d, \"winner\": %S, \
         \"winner_measured_ns\": %.0f, \"default_measured_ns\": %.0f, \
         \"sweep_ns_at_selected\": %.0f, \"sweep_ns_at_t1\": %.0f }\n}\n"
        selected
        (Harness.Autotune.plan_label e.Harness.Plan_cache.e_plan)
        (e.Harness.Plan_cache.e_measured_s *. 1e9)
        (e.Harness.Plan_cache.e_default_s *. 1e9)
        (sweep_ns selected) (sweep_ns 1);
      close_out oc;
      Printf.printf "wrote %s\n" file);
  rows

(* The measured autotuner end to end, per scheme: enumerate, prune with
   the model, measure the frontier, and compare three plans — the
   default, the model's pick (min predicted) and the measured winner.
   The gap between the last two is the model misprediction the measured
   re-ranking exists to absorb (BENCH_PR7's tiled regression is the
   motivating case).  Runs cache-bypassed: a bench must measure, not
   replay a previous bench's plan. *)
let run_autotune_bench ~json_file ~smoke () =
  Printf.printf "\n== Autotune: default vs predicted-best vs measured-best (native) ==\n";
  let dims =
    if smoke then Geometry.dims ~nx:16 ~ny:12 ~nz:10 else Geometry.dims ~nx:24 ~ny:20 ~nz:16
  in
  let topk, warmup, repeats, steps, explore_depth =
    if smoke then (4, 1, 2, 4, 1) else (8, 2, 5, 20, 2)
  in
  Printf.printf "room %dx%dx%d box, double precision, median of %d x %d-step intervals\n"
    dims.Geometry.nx dims.Geometry.ny dims.Geometry.nz repeats steps;
  let results =
    List.map
      (fun scheme ->
        let r =
          Harness.Autotune.tune ~engine:`Native ~topk ~warmup ~repeats ~steps
            ~max_shards:2 ~use_cache:false ~explore_depth ~scheme ~shape:Geometry.Box
            ~dims ()
        in
        let e = r.Harness.Autotune.r_entry in
        let predicted_best =
          List.fold_left
            (fun acc (m : Harness.Autotune.measured) ->
              match acc with
              | Some (b : Harness.Autotune.measured)
                when b.Harness.Autotune.m_predicted_s <= m.Harness.Autotune.m_predicted_s
                ->
                  acc
              | _ -> Some m)
            None r.Harness.Autotune.r_evaluated
        in
        Printf.printf "%s: %d candidates, %d measured\n" scheme
          r.Harness.Autotune.r_candidates r.Harness.Autotune.r_measurements;
        Printf.printf "  %-16s %-44s %14s\n" "plan" "" "measured ns";
        Printf.printf "  %-16s %-44s %14.0f\n" "default"
          (Harness.Autotune.plan_label Harness.Plan_cache.default_plan)
          (e.Harness.Plan_cache.e_default_s *. 1e9);
        (match predicted_best with
        | Some m ->
            Printf.printf "  %-16s %-44s %14.0f\n" "predicted-best"
              (Harness.Autotune.plan_label m.Harness.Autotune.m_plan)
              (m.Harness.Autotune.m_measured_s *. 1e9)
        | None -> ());
        Printf.printf "  %-16s %-44s %14.0f  (%.2fx of default)\n" "measured-best"
          (Harness.Autotune.plan_label e.Harness.Plan_cache.e_plan)
          (e.Harness.Plan_cache.e_measured_s *. 1e9)
          (e.Harness.Plan_cache.e_measured_s /. e.Harness.Plan_cache.e_default_s);
        (scheme, r, predicted_best))
      [ "fi"; "fi-mm"; "fd-mm" ]
  in
  (match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      let plan_json (pl : Harness.Plan_cache.plan) =
        Printf.sprintf
          "{ \"label\": %S, \"tile\": %s, \"variant\": [%s], \"local\": %d, \
           \"unroll\": %s, \"shards\": %d, \"schedule\": %S }"
          (Harness.Autotune.plan_label pl)
          (match pl.Harness.Plan_cache.pl_tile with
          | None -> "null"
          | Some (w, h) -> Printf.sprintf "[%d, %d]" w h)
          (String.concat ", "
             (List.map (Printf.sprintf "%S") pl.Harness.Plan_cache.pl_variant))
          pl.Harness.Plan_cache.pl_local
          (match pl.Harness.Plan_cache.pl_unroll with
          | None -> "null"
          | Some n -> string_of_int n)
          pl.Harness.Plan_cache.pl_shards
          (match pl.Harness.Plan_cache.pl_schedule with
          | `Seq -> "seq"
          | `Concurrent -> "concurrent"
          | `Overlap -> "overlap")
      in
      Printf.fprintf oc "{\n  \"bench\": \"autotune\",\n";
      Printf.fprintf oc "  \"room\": { \"nx\": %d, \"ny\": %d, \"nz\": %d },\n"
        dims.Geometry.nx dims.Geometry.ny dims.Geometry.nz;
      Printf.fprintf oc
        "  \"precision\": \"double\",\n  \"engine\": \"native\",\n  \"repeats\": %d,\n  \
         \"steps\": %d,\n"
        repeats steps;
      Printf.fprintf oc "  \"schemes\": [\n";
      List.iteri
        (fun i (scheme, (r : Harness.Autotune.result), predicted_best) ->
          let e = r.Harness.Autotune.r_entry in
          Printf.fprintf oc "    { \"scheme\": %S,\n" scheme;
          Printf.fprintf oc "      \"candidates\": %d, \"measurements\": %d,\n"
            r.Harness.Autotune.r_candidates r.Harness.Autotune.r_measurements;
          Printf.fprintf oc "      \"default_measured_ns\": %.0f,\n"
            (e.Harness.Plan_cache.e_default_s *. 1e9);
          (match predicted_best with
          | Some m ->
              Printf.fprintf oc
                "      \"predicted_best\": { \"plan\": %s, \"predicted_ns\": %.0f, \
                 \"measured_ns\": %.0f },\n"
                (plan_json m.Harness.Autotune.m_plan)
                (m.Harness.Autotune.m_predicted_s *. 1e9)
                (m.Harness.Autotune.m_measured_s *. 1e9)
          | None -> ());
          Printf.fprintf oc
            "      \"measured_best\": { \"plan\": %s, \"predicted_ns\": %.0f, \
             \"measured_ns\": %.0f },\n"
            (plan_json e.Harness.Plan_cache.e_plan)
            (e.Harness.Plan_cache.e_predicted_s *. 1e9)
            (e.Harness.Plan_cache.e_measured_s *. 1e9);
          Printf.fprintf oc "      \"evaluated\": [\n";
          let n = List.length r.Harness.Autotune.r_evaluated in
          List.iteri
            (fun j (m : Harness.Autotune.measured) ->
              Printf.fprintf oc
                "        { \"plan\": %s, \"predicted_ns\": %.0f, \"measured_ns\": \
                 %.0f, \"bit_identical\": %b }%s\n"
                (plan_json m.Harness.Autotune.m_plan)
                (m.Harness.Autotune.m_predicted_s *. 1e9)
                (m.Harness.Autotune.m_measured_s *. 1e9)
                m.Harness.Autotune.m_identical
                (if j = n - 1 then "" else ","))
            r.Harness.Autotune.r_evaluated;
          Printf.fprintf oc "      ]\n    }%s\n" (if i = 2 then "" else ","))
        results;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file);
  results

let () =
  let json_file = ref None and overlap_json = ref None and native_json = ref None
  and tiled_json = ref None and autotune_json = ref None and tblock_json = ref None
  and smoke = ref false and native_only = ref false and tiled_only = ref false
  and autotune_only = ref false and tblock_only = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse rest
    | "--overlap-json" :: file :: rest ->
        overlap_json := Some file;
        parse rest
    | "--native-json" :: file :: rest ->
        native_json := Some file;
        parse rest
    | "--tiled-json" :: file :: rest ->
        tiled_json := Some file;
        parse rest
    | "--autotune-json" :: file :: rest ->
        autotune_json := Some file;
        parse rest
    | "--tblock-json" :: file :: rest ->
        tblock_json := Some file;
        parse rest
    | "--native-only" :: rest ->
        native_only := true;
        parse rest
    | "--tiled-only" :: rest ->
        tiled_only := true;
        parse rest
    | "--autotune-only" :: rest ->
        autotune_only := true;
        parse rest
    | "--tblock-only" :: rest ->
        tblock_only := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s (expected --json FILE, --overlap-json FILE, --native-json \
           FILE, --tiled-json FILE, --autotune-json FILE, --tblock-json FILE, \
           --native-only, --tiled-only, --autotune-only, --tblock-only and/or --smoke)\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !native_only then
    ignore (run_native_bench ~json_file:!native_json ~smoke:!smoke ())
  else if !tiled_only then
    ignore (run_tiled_bench ~json_file:!tiled_json ~smoke:!smoke ())
  else if !autotune_only then
    ignore (run_autotune_bench ~json_file:!autotune_json ~smoke:!smoke ())
  else if !tblock_only then
    ignore (run_tblock_bench ~json_file:!tblock_json ~smoke:!smoke ())
  else if !smoke then begin
    (* CI smoke: tiny rooms, opt-trajectory + overlapped-queue sections. *)
    let opt_rows = run_opt_trajectory ~json_file:!json_file ~smoke:true () in
    run_overlap_bench ~json_file:!overlap_json ~opt_rows ~smoke:true ();
    ignore (run_native_bench ~json_file:!native_json ~smoke:true ());
    ignore (run_tiled_bench ~json_file:!tiled_json ~smoke:true ());
    ignore (run_autotune_bench ~json_file:!autotune_json ~smoke:true ());
    ignore (run_tblock_bench ~json_file:!tblock_json ~smoke:true ())
  end
  else begin
    print_endline "Room acoustics with complex boundary conditions: paper reproduction";
    print_endline "Part 1: analytic GPU model vs the paper's reported numbers";
    ignore (Harness.Experiments.all ());
    print_endline "\nPart 2: measured kernels (Bechamel) on the virtual GPU JIT";
    Printf.printf "room %dx%dx%d box, double precision\n" bench_dims.Geometry.nx
      bench_dims.Geometry.ny bench_dims.Geometry.nz;
    run_benchmarks ();
    run_parallel_speedup ();
    run_shard_scaling ();
    run_ablations ();
    run_tuning_table ();
    run_sanitizer_overhead ();
    let opt_rows = run_opt_trajectory ~json_file:!json_file ~smoke:false () in
    run_overlap_bench ~json_file:!overlap_json ~opt_rows ~smoke:false ();
    ignore (run_native_bench ~json_file:!native_json ~smoke:false ());
    ignore (run_tiled_bench ~json_file:!tiled_json ~smoke:false ());
    ignore (run_autotune_bench ~json_file:!autotune_json ~smoke:false ())
  end
